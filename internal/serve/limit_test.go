package serve

import (
	"sync"
	"testing"
	"time"

	"clientmap/internal/clockx"
	"clientmap/internal/netx"
)

// limiterSchedule replays a fixed (client, advance) schedule against a
// fresh limiter on a sim clock and returns the allow/deny sequence.
func limiterSchedule(cfg LimiterConfig) []bool {
	clock := clockx.NewSim(clockx.Epoch)
	cfg.Clock = clock
	l := NewLimiter(cfg)
	clients := []netx.Addr{
		netx.AddrFrom4(10, 0, 0, 1),
		netx.AddrFrom4(10, 0, 0, 2),
		netx.AddrFrom4(192, 0, 2, 77),
	}
	var out []bool
	for step := 0; step < 300; step++ {
		c := clients[step%len(clients)]
		out = append(out, l.Allow(c))
		if step%10 == 9 {
			clock.Advance(100 * time.Millisecond)
		}
	}
	return out
}

// TestLimiterDeterministic is the satellite property: rejections are a
// pure function of (client, sim time) — the same schedule always yields
// the same allow/deny sequence.
func TestLimiterDeterministic(t *testing.T) {
	cfg := LimiterConfig{Rate: 5, Burst: 10}
	a := limiterSchedule(cfg)
	b := limiterSchedule(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical schedules: %v vs %v", i, a[i], b[i])
		}
	}
	// The schedule must exercise both outcomes to mean anything.
	var allowed, denied int
	for _, ok := range a {
		if ok {
			allowed++
		} else {
			denied++
		}
	}
	if allowed == 0 || denied == 0 {
		t.Fatalf("degenerate schedule: %d allowed, %d denied", allowed, denied)
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	clock := clockx.NewSim(clockx.Epoch)
	l := NewLimiter(LimiterConfig{Clock: clock, Rate: 10, Burst: 3})
	c := netx.AddrFrom4(10, 0, 0, 9)
	for i := 0; i < 3; i++ {
		if !l.Allow(c) {
			t.Fatalf("burst query %d denied", i)
		}
	}
	if l.Allow(c) {
		t.Fatal("query beyond burst allowed")
	}
	// 10/s refills one token per 100ms.
	clock.Advance(100 * time.Millisecond)
	if !l.Allow(c) {
		t.Fatal("refilled token denied")
	}
	if l.Allow(c) {
		t.Fatal("second query after single refill allowed")
	}
}

func TestLimiterIsolatesClients(t *testing.T) {
	clock := clockx.NewSim(clockx.Epoch)
	l := NewLimiter(LimiterConfig{Clock: clock, Rate: 1, Burst: 1})
	a := netx.AddrFrom4(10, 0, 0, 1)
	b := netx.AddrFrom4(10, 0, 0, 2)
	if !l.Allow(a) {
		t.Fatal("first query denied")
	}
	if l.Allow(a) {
		t.Fatal("a's second query allowed")
	}
	if !l.Allow(b) {
		t.Fatal("b throttled by a's bucket")
	}
}

func TestLimiterEvictionFailsOpen(t *testing.T) {
	clock := clockx.NewSim(clockx.Epoch)
	l := NewLimiter(LimiterConfig{Clock: clock, Rate: 1, Burst: 1, Shards: 1, MaxClientsPerShard: 2})
	a := netx.AddrFrom4(10, 0, 0, 1)
	if !l.Allow(a) || l.Allow(a) {
		t.Fatal("setup: a should spend its only token")
	}
	// Two more clients push a out of the single 2-entry shard.
	l.Allow(netx.AddrFrom4(10, 0, 0, 2))
	l.Allow(netx.AddrFrom4(10, 0, 0, 3))
	if got := l.Clients(); got != 2 {
		t.Fatalf("tracked clients = %d, want 2", got)
	}
	// a returns with a fresh (full) bucket: evicted state fails open.
	if !l.Allow(a) {
		t.Fatal("evicted client still throttled")
	}
}

func TestLimiterDefaults(t *testing.T) {
	l := NewLimiter(LimiterConfig{})
	if l.rate != 100 || l.burst != 200 || len(l.shards) != 16 || l.maxPerShard != 4096 {
		t.Fatalf("defaults = rate %v burst %v shards %d max %d", l.rate, l.burst, len(l.shards), l.maxPerShard)
	}
	// Shard count rounds up to a power of two.
	if l := NewLimiter(LimiterConfig{Shards: 5}); len(l.shards) != 8 {
		t.Fatalf("Shards:5 rounded to %d", len(l.shards))
	}
}

func TestLimiterConcurrent(t *testing.T) {
	clock := clockx.NewSim(clockx.Epoch)
	l := NewLimiter(LimiterConfig{Clock: clock, Rate: 1000, Burst: 1000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Allow(netx.Addr(uint32(g*1000 + i%100)))
			}
		}(g)
	}
	wg.Wait()
	if l.Clients() == 0 {
		t.Fatal("no clients tracked")
	}
}
