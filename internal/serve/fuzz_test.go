package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clientmap/internal/netx"
)

// FuzzReverseName throws malformed labels, out-of-range octets, mixed
// case, truncation and hostile lengths at the reverse-name parser. The
// invariants: never panic, and every accepted name is exactly the
// canonical rendering of the parsed address (bijectivity).
func FuzzReverseName(f *testing.F) {
	seeds := []string{
		"17.2.0.192.clientmap",
		"0.0.0.0.clientmap",
		"255.255.255.255.clientmap",
		"256.0.0.1.clientmap",
		"1.2.3.clientmap",
		"1.2.3.4.5.clientmap",
		"01.2.3.4.clientmap",
		"1.2.3.4444.clientmap",
		"a.b.c.d.clientmap",
		"17.2.0.192.CLIENTMAP",
		"17.2.0.192.clientmap.",
		"-1.2.3.4.clientmap",
		"1..3.4.clientmap",
		"64500.as.clientmap",
		"clientmap",
		"",
		strings.Repeat("9.", 120) + "clientmap",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		a, ok := ParseReverseName(name, DefaultZone)
		if !ok {
			return
		}
		// Accepted names must round-trip to themselves: the parser takes
		// canonical form only, so formatting the result reproduces the
		// input exactly.
		if got := FormatReverseName(a, DefaultZone); got != name {
			t.Fatalf("non-canonical name accepted: %q parsed to %v, canonical %q", name, a, got)
		}

		// AS names and reverse names must never overlap.
		if _, asOK := ParseASName(name, DefaultZone); asOK {
			t.Fatalf("name %q parsed as both reverse and AS", name)
		}
	})
}

// FuzzASName mirrors FuzzReverseName for the AS form.
func FuzzASName(f *testing.F) {
	for _, s := range []string{
		"64500.as.clientmap", "0.as.clientmap", "4294967295.as.clientmap",
		"4294967296.as.clientmap", "01.as.clientmap", "as.clientmap",
		"x.as.clientmap", "1.2.3.4.as.clientmap", "",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		asn, ok := ParseASName(name, DefaultZone)
		if !ok {
			return
		}
		if got := FormatASName(asn, DefaultZone); got != name {
			t.Fatalf("non-canonical AS name accepted: %q → %d → %q", name, asn, got)
		}
	})
}

// FuzzHTTPQuery drives the HTTP handler with hostile paths and query
// strings. Invariants: no panic, a response is always written, and the
// status is from the handler's documented set.
func FuzzHTTPQuery(f *testing.F) {
	seeds := []string{
		"/v1/ip/192.0.2.17",
		"/v1/ip/",
		"/v1/ip/..%2f..%2fetc%2fpasswd",
		"/v1/ip/192.0.2.17/extra",
		"/v1/ip/999.999.999.999",
		"/v1/as/64500",
		"/v1/as/-1",
		"/v1/as/184467440737095516150",
		"/v1/summary",
		"/v1/summary?x=" + strings.Repeat("a", 4096),
		"/healthz",
		"/",
		"//v1//ip//1.2.3.4",
		"/v1/ip/1.2.3.4?a=b&c=d",
		"/v1/ip/%00%01%02",
		"/debug/pprof",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	store := NewStore()
	cmSeed := Build(BuildInput{Meta: Meta{Seed: 1, Scale: "fuzz", Passes: 2}, Campaign: testCampaign()})
	store.Swap(cmSeed, "fuzzhash")
	h := &HTTPHandler{store: store, cache: NewCache[[]byte](4, 64), met: newServeMetrics(nil)}

	allowed := map[int]bool{
		http.StatusOK: true, http.StatusBadRequest: true, http.StatusNotFound: true,
		http.StatusMethodNotAllowed: true, http.StatusTooManyRequests: true,
		http.StatusServiceUnavailable: true,
	}
	f.Fuzz(func(t *testing.T, rawPath string) {
		req, err := http.NewRequest(http.MethodGet, "http://x", nil)
		if err != nil {
			return
		}
		// Bypass URL validation the router would never see anyway; the
		// handler must cope with whatever ends up in URL.Path.
		req.URL.Path = rawPath
		req.RemoteAddr = "127.0.0.1:9"
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if !allowed[w.Code] {
			t.Fatalf("path %q produced status %d", rawPath, w.Code)
		}
		if w.Body.Len() == 0 {
			t.Fatalf("path %q produced an empty body", rawPath)
		}
	})
}

// FuzzParseIPv4 checks the HTTP address parser agrees with the DNS
// octet rules: accepted strings must round-trip through the reverse
// name formatter's octet rendering.
func FuzzParseIPv4(f *testing.F) {
	for _, s := range []string{"1.2.3.4", "0.0.0.0", "255.255.255.255", "256.1.1.1", "01.1.1.1", "", "1.2.3", "1.2.3.4.5"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, ok := parseIPv4(s)
		if !ok {
			return
		}
		b0, b1, b2, b3 := a.Octets()
		if got := netx.AddrFrom4(b0, b1, b2, b3); got != a {
			t.Fatalf("octet decomposition broke for %q", s)
		}
	})
}
