package serve

import (
	"fmt"
	"os"

	"clientmap/internal/netx"
	"clientmap/internal/snapshot"
	"clientmap/internal/statefs"
)

// KindClientMap is the snapshot artifact kind of the serving map. The
// codec lives here rather than in internal/snapshot because snapshot is
// imported by this package (the container primitives are generic); the
// kind string namespace is shared.
const KindClientMap = "serve.ClientMap"

// VersionClientMap is the artifact encoding version. Bump whenever the
// encode/decode pair changes shape; stale files then fail with
// snapshot.ErrVersionMismatch instead of decoding garbage.
const VersionClientMap uint16 = 1

// EncodeClientMap appends cm to w. Every slice is already in canonical
// sorted order (Build and Validate enforce it), so a given map always
// encodes to the same bytes — the property the golden serving corpus and
// the generation hash rely on.
func EncodeClientMap(w *snapshot.Writer, cm *ClientMap) {
	w.Uvarint(cm.Meta.Seed)
	w.String(cm.Meta.Scale)
	w.Int(cm.Meta.Passes)
	w.Time(cm.Meta.BuiltAt)
	w.String(cm.Meta.Source)

	w.Int(len(cm.Scopes))
	for _, e := range cm.Scopes {
		snapshot.EncodePrefix(w, e.Scope)
		w.Int(e.Hits)
		w.Uvarint(e.PassMask)
		w.Int(e.Domains)
		w.Float64(e.Confidence)
		w.Int(len(e.PoPs))
		for _, p := range e.PoPs {
			w.String(p.PoP)
			w.Int(p.Hits)
		}
	}

	w.Int(len(cm.ASes))
	for _, a := range cm.ASes {
		w.Uvarint(uint64(a.ASN))
		w.Int(a.Active24s)
		w.Int(a.Announced24s)
		w.Float64(a.Confidence)
	}

	w.Int(len(cm.Origins))
	prev := uint64(0)
	for _, o := range cm.Origins {
		// Origins are sorted by address; delta-encode the addresses the
		// same way EncodeSet24 does.
		w.Uvarint(uint64(o.Prefix.Addr()) - prev)
		prev = uint64(o.Prefix.Addr())
		w.Uvarint(uint64(o.Prefix.Bits()))
		w.Uvarint(uint64(o.ASN))
	}

	w.Int(len(cm.Traffic))
	prevT := uint64(0)
	for _, b := range cm.Traffic {
		w.Uvarint(uint64(b.Slash24) - prevT)
		prevT = uint64(b.Slash24)
		w.Float64(b.Weight)
	}
}

// DecodeClientMap reads a map written by EncodeClientMap and validates
// its structural invariants.
func DecodeClientMap(r *snapshot.Reader) (*ClientMap, error) {
	cm := &ClientMap{}
	cm.Meta.Seed = r.Uvarint()
	cm.Meta.Scale = r.String()
	cm.Meta.Passes = r.Int()
	cm.Meta.BuiltAt = r.Time()
	cm.Meta.Source = r.String()

	n := r.SliceLen(7)
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Zero-length sections decode to nil so an empty map round-trips to
	// itself (reflect-equal, and re-encodes to identical bytes). SliceLen
	// bounds every count against the remaining payload, so a forged
	// count cannot drive the append loops past the bytes that exist.
	if n > 0 {
		cm.Scopes = make([]ScopeEvidence, 0, clampCap(n))
	}
	for i := 0; i < n; i++ {
		var e ScopeEvidence
		e.Scope = snapshot.DecodePrefix(r)
		e.Hits = r.Int()
		e.PassMask = r.Uvarint()
		e.Domains = r.Int()
		e.Confidence = r.Float64()
		np := r.SliceLen(2)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if np > 0 {
			e.PoPs = make([]PoPEvidence, 0, clampCap(np))
		}
		for j := 0; j < np; j++ {
			e.PoPs = append(e.PoPs, PoPEvidence{PoP: r.String(), Hits: r.Int()})
		}
		cm.Scopes = append(cm.Scopes, e)
	}

	n = r.SliceLen(4)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 0 {
		cm.ASes = make([]ASEvidence, 0, clampCap(n))
	}
	for i := 0; i < n; i++ {
		cm.ASes = append(cm.ASes, ASEvidence{
			ASN:          uint32(r.Uvarint()),
			Active24s:    r.Int(),
			Announced24s: r.Int(),
			Confidence:   r.Float64(),
		})
	}

	n = r.SliceLen(3)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 0 {
		cm.Origins = make([]Origin, 0, clampCap(n))
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		prev += r.Uvarint()
		bits := int(r.Uvarint())
		cm.Origins = append(cm.Origins, Origin{
			Prefix: netx.PrefixFrom(netx.Addr(prev), bits),
			ASN:    uint32(r.Uvarint()),
		})
	}

	n = r.SliceLen(2)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 0 {
		cm.Traffic = make([]TrafficBin, 0, clampCap(n))
	}
	prevT := uint64(0)
	for i := 0; i < n; i++ {
		prevT += r.Uvarint()
		cm.Traffic = append(cm.Traffic, TrafficBin{Slash24: netx.Slash24(prevT), Weight: r.Float64()})
	}

	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := cm.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return cm, nil
}

// clampCap bounds a decoded length before it becomes an allocation, so a
// corrupt or hostile header cannot demand gigabytes up front. The slices
// still grow to the true element count via append.
func clampCap(n int) int {
	const maxPrealloc = 1 << 16
	if n < 0 {
		return 0
	}
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// Marshal frames cm as snapshot-container bytes and returns them with
// the payload content hash (the artifact's identity, surfaced to clients
// as the "artifact" field of every response).
func Marshal(cm *ClientMap) (data []byte, payloadHash string) {
	h := snapshot.Header{Kind: KindClientMap, Version: VersionClientMap, Fingerprint: cm.Meta.Source}
	return snapshot.Marshal(h, func(w *snapshot.Writer) { EncodeClientMap(w, cm) })
}

// Unmarshal parses snapshot-container bytes into a validated ClientMap
// and its payload hash.
func Unmarshal(data []byte) (*ClientMap, string, error) {
	h, r, hash, err := snapshot.Open(data)
	if err != nil {
		return nil, "", err
	}
	if err := snapshot.Check(h, KindClientMap, VersionClientMap); err != nil {
		return nil, "", err
	}
	cm, err := DecodeClientMap(r)
	if err != nil {
		return nil, "", err
	}
	return cm, hash, nil
}

// WriteFile atomically writes cm to path (statefs.Disk — fsync'd temp
// file + rename, the same discipline the pipeline checkpoints use) and
// returns the payload hash. A concurrent reader (clientmapd's reload
// poller) only ever sees a complete artifact.
func WriteFile(path string, cm *ClientMap) (string, error) {
	return WriteFileTo(nil, path, cm)
}

// WriteFileTo is WriteFile through an explicit state-I/O seam (nil
// means statefs.Disk); the streaming harness routes the rolling
// artifact through the same fault-injecting FS as its checkpoints.
func WriteFileTo(fsys statefs.FS, path string, cm *ClientMap) (string, error) {
	data, hash := Marshal(cm)
	if err := statefs.Or(fsys).WriteAtomic(path, data); err != nil {
		return "", err
	}
	return hash, nil
}

// ReadFile loads and validates a ClientMap snapshot from disk.
func ReadFile(path string) (*ClientMap, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	return Unmarshal(data)
}
