package serve

import "clientmap/internal/statefs"

// Rolling-artifact export for the streaming mode: the stream assembles a
// fresh ClientMap every emitted sim hour and hands it here; the exporter
// atomically replaces the artifact file only when the map's payload hash
// actually changed. clientmapd's -reload polling then hot-swaps the new
// map, so a living view of the churning world reaches clients end to end
// without either side restarting.

// RollingExporter writes successive ClientMap snapshots to one path,
// deduplicating by payload hash. It is not safe for concurrent use; the
// stream emits from its single hour loop.
type RollingExporter struct {
	// Path is the artifact file clientmapd watches. Empty disables
	// export (Export still hashes, so callers get the map identity).
	Path string
	// FS is the state-I/O seam the artifact is written through; nil
	// means statefs.Disk.
	FS statefs.FS

	lastHash string
	writes   int
}

// Export marshals cm, and — when Path is set and the payload hash
// differs from the previously written artifact — atomically replaces
// the file. It returns the payload hash and whether a write happened.
func (e *RollingExporter) Export(cm *ClientMap) (hash string, wrote bool, err error) {
	if e.Path == "" {
		_, hash = Marshal(cm)
		return hash, false, nil
	}
	data, hash := Marshal(cm)
	if hash == e.lastHash {
		return hash, false, nil
	}
	if err := statefs.Or(e.FS).WriteAtomic(e.Path, data); err != nil {
		return hash, false, err
	}
	e.lastHash = hash
	e.writes++
	return hash, true, nil
}

// Writes reports how many distinct artifacts Export has written.
func (e *RollingExporter) Writes() int { return e.writes }
