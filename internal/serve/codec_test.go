package serve

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"clientmap/internal/snapshot"
)

func TestCodecRoundTrip(t *testing.T) {
	cm := testClientMap(t)
	data, hash := Marshal(cm)
	got, gotHash, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != hash {
		t.Errorf("hash changed across roundtrip: %s vs %s", gotHash, hash)
	}
	if !reflect.DeepEqual(cm, got) {
		t.Fatalf("roundtrip mismatch:\n in: %+v\nout: %+v", cm, got)
	}
}

func TestCodecEmptyMap(t *testing.T) {
	cm := &ClientMap{Meta: testMeta()}
	data, _ := Marshal(cm)
	got, _, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cm, got) {
		t.Fatalf("empty-map roundtrip mismatch: %+v", got)
	}
}

func TestCodecDeterministic(t *testing.T) {
	cm := testClientMap(t)
	a, _ := Marshal(cm)
	b, _ := Marshal(cm)
	if string(a) != string(b) {
		t.Fatal("same map marshalled to different bytes")
	}
}

func TestCodecDetectsCorruption(t *testing.T) {
	data, _ := Marshal(testClientMap(t))
	for _, off := range []int{len(data) / 3, len(data) / 2, 2 * len(data) / 3} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, _, err := Unmarshal(bad); err == nil {
			t.Errorf("flipping byte %d went undetected", off)
		}
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	data, _ := Marshal(testClientMap(t))
	for _, n := range []int{0, 4, len(data) / 2, len(data) - 1} {
		if _, _, err := Unmarshal(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestCodecRejectsWrongKind(t *testing.T) {
	h := snapshot.Header{Kind: "serve.SomethingElse", Version: VersionClientMap}
	data, _ := snapshot.Marshal(h, func(w *snapshot.Writer) { EncodeClientMap(w, testClientMap(t)) })
	_, _, err := Unmarshal(data)
	if err == nil {
		t.Fatal("wrong artifact kind accepted")
	}
}

func TestCodecRejectsInvalidDecodedMap(t *testing.T) {
	// An artifact whose payload decodes but violates Validate (confidence
	// out of range) must be rejected as corrupt, not served.
	cm := testClientMap(t)
	cm.Scopes[0].Confidence = 2.0
	h := snapshot.Header{Kind: KindClientMap, Version: VersionClientMap}
	data, _ := snapshot.Marshal(h, func(w *snapshot.Writer) { EncodeClientMap(w, cm) })
	_, _, err := Unmarshal(data)
	if !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("invalid map: got %v, want ErrCorrupt", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "map.snap")
	cm := testClientMap(t)
	hash, err := WriteFile(path, cm)
	if err != nil {
		t.Fatal(err)
	}
	got, gotHash, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotHash != hash {
		t.Errorf("hash mismatch: wrote %s, read %s", hash, gotHash)
	}
	if !reflect.DeepEqual(cm, got) {
		t.Fatal("file roundtrip mismatch")
	}
	// Atomic write leaves no temp files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("stray files after WriteFile: %v", entries)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}
