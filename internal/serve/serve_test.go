package serve

import (
	"math"
	"testing"

	"clientmap/internal/netx"
)

func TestBuildScopes(t *testing.T) {
	cm := testClientMap(t)
	if len(cm.Scopes) != 3 {
		t.Fatalf("got %d scopes, want 3", len(cm.Scopes))
	}
	// Sorted by (addr, bits): 192.0.2.0/24, 198.51.100.0/23, 203.0.113.128/25.
	wantOrder := []string{"192.0.2.0/24", "198.51.100.0/23", "203.0.113.128/25"}
	for i, w := range wantOrder {
		if got := cm.Scopes[i].Scope.String(); got != w {
			t.Errorf("scope %d = %s, want %s", i, got, w)
		}
	}

	// 192.0.2.0/24 aggregates google (5 hits, mask 1011) + wikipedia
	// (2 hits, mask 0100) at the same PoP.
	s := cm.Scopes[0]
	if s.Hits != 7 || s.Domains != 2 || s.PassMask != 0b1111 {
		t.Errorf("192.0.2.0/24 evidence = hits %d domains %d mask %b", s.Hits, s.Domains, s.PassMask)
	}
	if len(s.PoPs) != 1 || s.PoPs[0].PoP != "fra" || s.PoPs[0].Hits != 7 {
		t.Errorf("192.0.2.0/24 PoPs = %+v", s.PoPs)
	}
	if want := Confidence(0b1111, 4); s.Confidence != want {
		t.Errorf("confidence = %v, want %v", s.Confidence, want)
	}
}

func TestBuildASes(t *testing.T) {
	cm := testClientMap(t)
	if len(cm.ASes) != 2 {
		t.Fatalf("got %d ASes, want 2: %+v", len(cm.ASes), cm.ASes)
	}
	// AS64500: 192.0.2.0/24 (1) + 198.51.100.0/23 (2) active of 5 announced.
	a := cm.ASes[0]
	if a.ASN != 64500 || a.Active24s != 3 || a.Announced24s != 5 {
		t.Errorf("AS64500 = %+v", a)
	}
	// Its max scope confidence is the /24's (all 4 passes).
	if want := Confidence(0b1111, 4); a.Confidence != want {
		t.Errorf("AS64500 confidence = %v, want %v", a.Confidence, want)
	}
	// AS64501: the /25 folds to its containing /24.
	b := cm.ASes[1]
	if b.ASN != 64501 || b.Active24s != 1 || b.Announced24s != 1 {
		t.Errorf("AS64501 = %+v", b)
	}
}

func TestBuildOrigins(t *testing.T) {
	cm := testClientMap(t)
	if len(cm.Origins) != 3 {
		t.Fatalf("got %d origins, want 3", len(cm.Origins))
	}
	for i := 1; i < len(cm.Origins); i++ {
		if !prefixLess(cm.Origins[i-1].Prefix, cm.Origins[i].Prefix) {
			t.Errorf("origins unsorted at %d", i)
		}
	}
}

func TestBuildTrafficFromVolume(t *testing.T) {
	cm := testClientMap(t)
	if len(cm.Traffic) != 3 {
		t.Fatalf("got %d traffic bins, want 3", len(cm.Traffic))
	}
	var total float64
	for _, b := range cm.Traffic {
		total += b.Weight
	}
	if total != 16 {
		t.Errorf("total weight = %v, want 16", total)
	}
}

func TestBuildTrafficUniformFallback(t *testing.T) {
	cm := Build(BuildInput{Meta: testMeta(), Campaign: testCampaign(), RV: testRV(t)})
	// Active /24s: 192.0.2.0/24, 2× under the /23, and the /25's parent.
	if len(cm.Traffic) != 4 {
		t.Fatalf("got %d uniform bins, want 4", len(cm.Traffic))
	}
	for _, b := range cm.Traffic {
		if b.Weight != 1 {
			t.Errorf("uniform weight = %v for %s", b.Weight, b.Slash24)
		}
	}
}

func TestBuildWithoutRV(t *testing.T) {
	cm := Build(BuildInput{Meta: testMeta(), Campaign: testCampaign()})
	if len(cm.ASes) != 0 || len(cm.Origins) != 0 {
		t.Errorf("prefix-only build grew AS data: %d ASes, %d origins", len(cm.ASes), len(cm.Origins))
	}
	if err := cm.Validate(); err != nil {
		t.Errorf("prefix-only map invalid: %v", err)
	}
}

func TestConfidence(t *testing.T) {
	cases := []struct {
		mask   uint64
		passes int
		want   float64
	}{
		{0, 4, 1.0 / 6},
		{0b1, 4, 2.0 / 6},
		{0b1111, 4, 5.0 / 6},
		{0b11, 2, 3.0 / 4},
		{0xFFFFFFFFFFFFFFFF, 4, 5.0 / 6}, // hit count clamped to passes
		{0b1, 0, 2.0 / 3},                // zero passes defended to 1
	}
	for _, c := range cases {
		if got := Confidence(c.mask, c.passes); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Confidence(%b, %d) = %v, want %v", c.mask, c.passes, got, c.want)
		}
	}
	// Confidence is always strictly inside (0, 1): Validate depends on it.
	for passes := 0; passes <= 64; passes++ {
		for _, mask := range []uint64{0, 1, 0xFF, ^uint64(0)} {
			c := Confidence(mask, passes)
			if c <= 0 || c >= 1 {
				t.Fatalf("Confidence(%x, %d) = %v out of (0,1)", mask, passes, c)
			}
		}
	}
}

func TestValidateRejectsDisorder(t *testing.T) {
	good := testClientMap(t)

	swapScopes := *good
	swapScopes.Scopes = append([]ScopeEvidence(nil), good.Scopes...)
	swapScopes.Scopes[0], swapScopes.Scopes[1] = swapScopes.Scopes[1], swapScopes.Scopes[0]
	if swapScopes.Validate() == nil {
		t.Error("unsorted scopes passed Validate")
	}

	badConf := *good
	badConf.Scopes = append([]ScopeEvidence(nil), good.Scopes...)
	badConf.Scopes[0].Confidence = 1.5
	if badConf.Validate() == nil {
		t.Error("confidence > 1 passed Validate")
	}

	dupAS := *good
	dupAS.ASes = append([]ASEvidence(nil), good.ASes...)
	dupAS.ASes[1].ASN = dupAS.ASes[0].ASN
	if dupAS.Validate() == nil {
		t.Error("duplicate ASN passed Validate")
	}

	badTraffic := *good
	badTraffic.Traffic = append([]TrafficBin(nil), good.Traffic...)
	badTraffic.Traffic[0].Weight = -1
	if badTraffic.Validate() == nil {
		t.Error("negative traffic weight passed Validate")
	}
}

func TestBuildDeterministic(t *testing.T) {
	// Two independent builds from equal inputs must encode identically —
	// map iteration order must not leak into the artifact.
	a, _ := Marshal(testClientMap(t))
	b, _ := Marshal(testClientMap(t))
	if string(a) != string(b) {
		t.Fatal("two builds of the same campaign encoded differently")
	}
}

func TestPrefixLess(t *testing.T) {
	p1 := netx.PrefixFrom(netx.AddrFrom4(10, 0, 0, 0), 8)
	p2 := netx.PrefixFrom(netx.AddrFrom4(10, 0, 0, 0), 16)
	p3 := netx.PrefixFrom(netx.AddrFrom4(10, 1, 0, 0), 16)
	if !prefixLess(p1, p2) || !prefixLess(p2, p3) || prefixLess(p3, p1) {
		t.Error("prefixLess ordering broken")
	}
}
