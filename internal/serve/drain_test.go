package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"clientmap/internal/dnsnet"
	"clientmap/internal/dnswire"
)

// TestDaemonDrain: SIGTERM's code path — queries answered before the
// drain, the drain completing cleanly, counters recording it, and the
// listeners actually gone afterwards.
func TestDaemonDrain(t *testing.T) {
	d, _ := startDaemon(t, testClientMap(t))
	reg := d.reg

	// A burst of concurrent traffic on both transports, all of it issued
	// before the drain: every query must be answered.
	q := dnswire.NewQuery(4242, "17.2.0.192.clientmap", dnswire.TypeA)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &dnsnet.UDPClient{Timeout: 5 * time.Second}
			if _, err := cl.Exchange(context.Background(), d.DNSUDPAddr(), q); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get("http://" + d.HTTPAddr() + "/v1/ip/192.0.2.17")
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("pre-drain query failed: %v", err)
	}

	if !d.Drain(5 * time.Second) {
		t.Fatal("drain with no in-flight work should complete cleanly")
	}
	led := reg.SnapshotPrefix("serve.drain.")
	if led["serve.drain.started"] != 1 || led["serve.drain.completed"] != 1 {
		t.Fatalf("drain counters = %v", led)
	}
	if led["serve.drain.timeouts"] != 0 {
		t.Fatalf("unexpected drain timeout: %v", led)
	}

	// The sockets are gone: new queries fail instead of hanging.
	cl := &dnsnet.UDPClient{Timeout: 200 * time.Millisecond}
	if _, err := cl.Exchange(context.Background(), d.DNSUDPAddr(), q); err == nil {
		t.Error("DNS socket still answering after drain")
	}
	if _, err := http.Get("http://" + d.HTTPAddr() + "/v1/summary"); err == nil {
		t.Error("HTTP listener still answering after drain")
	}

	// Close after Drain is a no-op, and a second Drain too.
	if err := d.Close(); err != nil {
		t.Fatalf("close after drain: %v", err)
	}
	if !d.Drain(time.Second) {
		t.Fatal("drain after close should be a clean no-op")
	}
	if got := reg.SnapshotPrefix("serve.drain.")["serve.drain.started"]; got != 1 {
		t.Fatalf("re-drain should not recount: started=%d", got)
	}
}
