package serve

import (
	"clientmap/internal/netx"
)

// Index is one ClientMap compiled into query-ready form. It is immutable
// after NewIndex returns: the trie, bitmap and tables are built once and
// only read afterwards, so concurrent lookups need no locks (netx.Trie
// documents concurrent lookups without mutation as safe). The daemon
// publishes an Index with an atomic pointer swap; queries in flight keep
// whichever Index they started with.
type Index struct {
	// Generation is the store's monotonic load counter: 1 for the first
	// artifact a daemon serves, +1 per hot reload. Every response carries
	// it, which is how the reload race test proves no torn reads.
	Generation uint64
	// Hash is the artifact payload's content hash (its identity across
	// daemons; generations are per-process, hashes are global).
	Hash string
	// Meta echoes the artifact's provenance.
	Meta Meta

	scopes []ScopeEvidence
	trie   netx.Trie[int32] // scope prefix → index into scopes
	upper  *netx.Set24      // every /24 under any hit scope
	ases   map[uint32]ASEvidence
	asns   []uint32 // sorted, for Summary

	origins netx.Trie[uint32] // announced prefix → origin ASN

	traffic []TrafficBin
	cum     []float64 // cumulative traffic weights for replay sampling
}

// NewIndex compiles cm. The caller assigns the store generation; a bare
// NewIndex(cm, 0, hash) is fine for tests and one-shot tools.
func NewIndex(cm *ClientMap, generation uint64, hash string) *Index {
	ix := &Index{
		Generation: generation,
		Hash:       hash,
		Meta:       cm.Meta,
		scopes:     cm.Scopes,
		upper:      netx.NewSet24(),
		ases:       make(map[uint32]ASEvidence, len(cm.ASes)),
		asns:       make([]uint32, 0, len(cm.ASes)),
		traffic:    cm.Traffic,
	}
	for i := range cm.Scopes {
		e := &cm.Scopes[i]
		ix.trie.Insert(e.Scope, int32(i))
		ix.upper.AddPrefix(e.Scope)
	}
	for _, a := range cm.ASes {
		ix.ases[a.ASN] = a
		ix.asns = append(ix.asns, a.ASN)
	}
	for _, o := range cm.Origins {
		ix.origins.Insert(o.Prefix, o.ASN)
	}
	ix.cum = make([]float64, len(cm.Traffic))
	total := 0.0
	for i, b := range cm.Traffic {
		total += b.Weight
		ix.cum[i] = total
	}
	return ix
}

// Result is the answer to a /24 (or single-address) activity query.
type Result struct {
	// Query is the /24 the lookup resolved to.
	Query netx.Slash24
	// Active reports whether the /24 lies under any hit scope.
	Active bool
	// Scope is the most specific hit scope containing the /24 (zero when
	// inactive).
	Scope netx.Prefix
	// Evidence is the scope's aggregated evidence; nil when inactive.
	Evidence *ScopeEvidence
	// ASN is the origin AS of the /24 per the announced table; HasASN is
	// false for unannounced space.
	ASN    uint32
	HasASN bool
}

// Lookup24 answers the activity question for one /24: membership via the
// bitmap, then the most specific covering scope via the trie.
func (ix *Index) Lookup24(p netx.Slash24) Result {
	res := Result{Query: p}
	res.ASN, _, res.HasASN = ix.origins.Lookup(p.Addr())
	if !ix.upper.Contains(p) {
		return res
	}
	// A /24 inside the upper set is under some hit scope; the trie's
	// longest match on the network address names the most specific one.
	// (A scope more specific than /24 matches via LookupPrefix on the
	// containing /24.)
	if i, _, ok := ix.trie.LookupPrefix(p.Prefix()); ok {
		res.Active = true
		res.Scope = ix.scopes[i].Scope
		res.Evidence = &ix.scopes[i]
		return res
	}
	// Scopes narrower than /24 (e.g. a /25 hit): any stored prefix inside
	// this /24 is evidence for it.
	ix.trie.CoveredBy(p.Prefix(), func(_ netx.Prefix, i int32) bool {
		res.Active = true
		res.Scope = ix.scopes[i].Scope
		res.Evidence = &ix.scopes[i]
		return false
	})
	return res
}

// LookupAddr answers for the /24 containing a.
func (ix *Index) LookupAddr(a netx.Addr) Result { return ix.Lookup24(a.Slash24()) }

// LookupAS returns the AS aggregate for asn.
func (ix *Index) LookupAS(asn uint32) (ASEvidence, bool) {
	a, ok := ix.ases[asn]
	return a, ok
}

// Stats summarizes the index for the summary endpoint and logs.
type Stats struct {
	Scopes      int
	Active24s   int
	ActiveASes  int
	Origins     int
	TrafficBins int
}

// Stats returns the index's shape.
func (ix *Index) Stats() Stats {
	return Stats{
		Scopes:      len(ix.scopes),
		Active24s:   ix.upper.Len(),
		ActiveASes:  len(ix.asns),
		Origins:     ix.origins.Len(),
		TrafficBins: len(ix.traffic),
	}
}

// SampleTraffic maps u ∈ [0, 1) to a /24 drawn with probability
// proportional to the artifact's traffic weights — the deterministic
// replay draw the load generator uses. ok is false when the artifact
// carries no traffic bins.
func (ix *Index) SampleTraffic(u float64) (netx.Slash24, bool) {
	n := len(ix.cum)
	if n == 0 || ix.cum[n-1] <= 0 {
		return 0, false
	}
	target := u * ix.cum[n-1]
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ix.traffic[lo].Slash24, true
}
