package serve

import (
	"testing"
	"time"

	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/netx"
	"clientmap/internal/routeviews"
)

// mustPrefix parses p or fails the test.
func mustPrefix(t testing.TB, s string) netx.Prefix {
	t.Helper()
	p, err := netx.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testRV is the fixture's announced-space table:
//
//	AS64500: 192.0.2.0/24, 198.51.100.0/22
//	AS64501: 203.0.113.0/24
func testRV(t testing.TB) *routeviews.Table {
	t.Helper()
	rv := routeviews.New()
	rv.Add(mustPrefix(t, "192.0.2.0/24"), 64500)
	rv.Add(mustPrefix(t, "198.51.100.0/22"), 64500)
	rv.Add(mustPrefix(t, "203.0.113.0/24"), 64501)
	return rv
}

// testCampaign is a hand-built 4-pass campaign with hits at three
// granularities: a /24 seen by two domains, a /23 (coarser than /24,
// exercising the trie LPM path) and a /25 (finer than /24, exercising
// the CoveredBy fallback).
func testCampaign() *cacheprobe.Campaign {
	p24, _ := netx.ParsePrefix("192.0.2.0/24")
	p23, _ := netx.ParsePrefix("198.51.100.0/23")
	p25, _ := netx.ParsePrefix("203.0.113.128/25")
	return &cacheprobe.Campaign{
		Passes: 4,
		Hits: map[string]map[netx.Prefix]*cacheprobe.Hit{
			"google.com": {
				p24: {RespScope: p24, PoP: "fra", Domain: "google.com", Count: 5, PassMask: 0b1011},
				p23: {RespScope: p23, PoP: "ams", Domain: "google.com", Count: 3, PassMask: 0b0001},
			},
			"wikipedia.org": {
				p24: {RespScope: p24, PoP: "fra", Domain: "wikipedia.org", Count: 2, PassMask: 0b0100},
				p25: {RespScope: p25, PoP: "iad", Domain: "wikipedia.org", Count: 1, PassMask: 0b0010},
			},
		},
	}
}

// testVolume weights two active /24s and one inactive one (clients
// exist in space the campaign missed — the load model should still
// replay queries there).
func testVolume() map[netx.Slash24]float64 {
	a := netx.AddrFrom4(192, 0, 2, 0).Slash24()
	b := netx.AddrFrom4(198, 51, 100, 0).Slash24()
	c := netx.AddrFrom4(198, 18, 0, 0).Slash24()
	return map[netx.Slash24]float64{a: 10, b: 5, c: 1}
}

// testMeta is the fixture artifact's provenance.
func testMeta() Meta {
	return Meta{
		Seed:    99,
		Scale:   "fixture",
		Passes:  4,
		BuiltAt: time.Date(2021, 9, 20, 0, 0, 0, 0, time.UTC),
		Source:  "fixture_test",
	}
}

// testClientMap builds the canonical fixture artifact.
func testClientMap(t testing.TB) *ClientMap {
	t.Helper()
	cm := Build(BuildInput{
		Meta:         testMeta(),
		Campaign:     testCampaign(),
		RV:           testRV(t),
		ClientVolume: testVolume(),
	})
	if err := cm.Validate(); err != nil {
		t.Fatalf("fixture map invalid: %v", err)
	}
	return cm
}

// testIndex compiles the fixture under generation 1.
func testIndex(t testing.TB) *Index {
	t.Helper()
	cm := testClientMap(t)
	_, hash := Marshal(cm)
	return NewIndex(cm, 1, hash)
}
