package serve

import (
	"context"
	"reflect"
	"testing"
	"time"
)

func TestPlanLoadDeterministic(t *testing.T) {
	ix := testIndex(t)
	cfg := LoadConfig{Seed: 2021, Queries: 500}
	p1 := PlanLoad(ix, cfg)
	p2 := PlanLoad(ix, cfg)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("two plans from the same (seed, index, config) differ")
	}
	if len(p1.Queries) != 500 {
		t.Fatalf("plan has %d queries", len(p1.Queries))
	}
	// Different seed, different plan (otherwise the seed is ignored).
	p3 := PlanLoad(ix, LoadConfig{Seed: 9999, Queries: 500})
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("seed change did not change the plan")
	}
}

func TestPlanLoadMix(t *testing.T) {
	ix := testIndex(t)
	plan := PlanLoad(ix, LoadConfig{Seed: 7, Queries: 4000})
	counts := map[string]int{}
	for _, q := range plan.Queries {
		counts[q.Transport]++
		counts[q.Kind]++
		if q.Kind == "as" && q.ASN == 0 {
			t.Fatal("as query without ASN")
		}
	}
	// Defaults: DNS ~50%, AS ~10%, misses ≥20%. Loose bounds — the plan
	// is seeded, so these are deterministic, but avoid brittleness.
	if counts["dns"] < 1500 || counts["dns"] > 2500 {
		t.Errorf("dns share = %d/4000", counts["dns"])
	}
	if counts["as"] < 200 || counts["as"] > 700 {
		t.Errorf("as share = %d/4000", counts["as"])
	}
	if counts["miss"] < 400 {
		t.Errorf("miss share = %d/4000", counts["miss"])
	}
	if counts["ip"] == 0 {
		t.Error("no ip queries planned")
	}
}

// TestRunLoadAgainstDaemon is the in-repo serve smoke: boot the daemon
// on ephemeral ports, replay a small deterministic plan over both
// transports, and require zero errors.
func TestRunLoadAgainstDaemon(t *testing.T) {
	d, _ := startDaemon(t, testClientMap(t))
	cfg := LoadConfig{
		Seed:     2021,
		Queries:  300,
		Workers:  4,
		HTTPBase: "http://" + d.HTTPAddr(),
		DNSAddr:  d.DNSUDPAddr(),
		Timeout:  5 * time.Second,
	}
	plan := PlanLoad(d.Store().Current(), cfg)
	rep, err := RunLoad(context.Background(), plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 300 {
		t.Fatalf("report queries = %d", rep.Queries)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d/%d queries errored", rep.Errors, rep.Queries)
	}
	if rep.HTTP.Queries == 0 || rep.DNS.Queries == 0 {
		t.Fatalf("one transport unused: http=%d dns=%d", rep.HTTP.Queries, rep.DNS.Queries)
	}
	if rep.TotalQPS <= 0 || rep.HTTP.P99Micro <= 0 || rep.DNS.P99Micro <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.HTTP.P50Micro > rep.HTTP.P99Micro || rep.DNS.P50Micro > rep.DNS.P99Micro {
		t.Fatalf("p50 above p99: %+v", rep)
	}
}

// TestRunLoadSingleTransport folds the disabled transport's queries onto
// the enabled one instead of dropping them.
func TestRunLoadSingleTransport(t *testing.T) {
	d, _ := startDaemon(t, testClientMap(t))
	cfg := LoadConfig{
		Seed:     2021,
		Queries:  100,
		Workers:  2,
		HTTPBase: "http://" + d.HTTPAddr(),
	}
	plan := PlanLoad(d.Store().Current(), cfg)
	rep, err := RunLoad(context.Background(), plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.HTTP.Queries != 100 || rep.DNS.Queries != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunLoadNoTransport(t *testing.T) {
	plan := PlanLoad(testIndex(t), LoadConfig{Seed: 1, Queries: 10})
	if _, err := RunLoad(context.Background(), plan, LoadConfig{Queries: 10}); err == nil {
		t.Fatal("RunLoad without any transport succeeded")
	}
}

func TestPercentileIndex(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{1, 50, 0}, {1, 99, 0},
		{100, 50, 49}, {100, 99, 98},
		{10, 99, 9}, {2, 50, 0},
	}
	for _, c := range cases {
		if got := percentileIndex(c.n, c.p); got != c.want {
			t.Errorf("percentileIndex(%d, %d) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}
