package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clientmap/internal/dnswire"
	"clientmap/internal/netx"
)

// genClientMap builds a distinguishable artifact per generation: the hit
// count (and therefore every response body) differs across generations,
// so a torn read — evidence from one generation, provenance from
// another — cannot go unnoticed.
func genClientMap(t testing.TB, gen int) *ClientMap {
	t.Helper()
	camp := testCampaign()
	for _, hits := range camp.Hits {
		for _, h := range hits {
			h.Count += 100 * gen
		}
	}
	cm := Build(BuildInput{
		Meta:         Meta{Seed: uint64(gen), Scale: "reload", Passes: 4, Source: fmt.Sprintf("gen-%d", gen)},
		Campaign:     camp,
		RV:           testRV(t),
		ClientVolume: testVolume(),
	})
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestHotReloadConsistency is the satellite race test: concurrent
// lookups while the store swaps artifacts N times must drop zero
// queries, error zero queries, and every response must be consistent
// with exactly one loaded generation. Run under -race this also proves
// the swap itself is data-race-free.
func TestHotReloadConsistency(t *testing.T) {
	const (
		generations = 12
		readers     = 6
	)

	// Precompute every generation's expected responses up front: the DNS
	// wire template bytes and the HTTP body for a fixed query set.
	maps := make([]*ClientMap, generations+1)
	wantHTTP := make([]map[string]string, generations+1)
	wantDNS := make([]map[string]string, generations+1)
	httpPaths := []string{"/v1/ip/192.0.2.17", "/v1/ip/198.51.101.9", "/v1/as/64500", "/v1/summary"}
	dnsNames := []string{"17.2.0.192.clientmap", "9.101.51.198.clientmap", "64500.as.clientmap"}
	for g := 1; g <= generations; g++ {
		maps[g] = genClientMap(t, g)
		ix := NewIndex(maps[g], uint64(g), fmt.Sprintf("hash-gen-%d", g))
		wantHTTP[g] = map[string]string{}
		wantDNS[g] = map[string]string{}
		probe := &HTTPHandler{store: storeAt(ix), cache: NewCache[[]byte](1, 64), met: newServeMetrics(nil)}
		for _, p := range httpPaths {
			wantHTTP[g][p] = get(probe, p).Body.String()
		}
		dnsProbe := &DNSHandler{store: storeAt(ix), cache: NewCache[*dnswire.Message](1, 64), zone: DefaultZone, ttl: 60, met: newServeMetrics(nil)}
		for _, name := range dnsNames {
			r := dnsProbe.ServeDNS(context.Background(), 0, dnswire.NewQuery(0, name, dnswire.TypeTXT))
			b, err := r.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			wantDNS[g][name] = string(b)
		}
	}

	// Live store under test, starting at generation 1.
	store := NewStore()
	store.Swap(maps[1], "hash-gen-1")
	httpH := &HTTPHandler{store: store, cache: NewCache[[]byte](8, 256), met: newServeMetrics(nil)}
	dnsH := &DNSHandler{store: store, cache: NewCache[*dnswire.Message](8, 256), zone: DefaultZone, ttl: 60, met: newServeMetrics(nil)}

	var (
		stop     atomic.Bool
		queries  atomic.Int64
		failures atomic.Int64
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if (r+i)%2 == 0 {
					path := httpPaths[i%len(httpPaths)]
					req := httptest.NewRequest(http.MethodGet, path, nil)
					req.RemoteAddr = "127.0.0.1:1"
					w := httptest.NewRecorder()
					httpH.ServeHTTP(w, req)
					queries.Add(1)
					if w.Code != http.StatusOK {
						failures.Add(1)
						t.Errorf("reader %d: status %d for %s", r, w.Code, path)
						return
					}
					body := w.Body.String()
					if !matchesAnyGen(body, path, wantHTTP) {
						failures.Add(1)
						t.Errorf("reader %d: body matches no generation: %s", r, body)
						return
					}
				} else {
					name := dnsNames[i%len(dnsNames)]
					resp := dnsH.ServeDNS(context.Background(), netx.Addr(r), dnswire.NewQuery(0, name, dnswire.TypeTXT))
					queries.Add(1)
					if resp == nil || resp.RCode != dnswire.RCodeSuccess {
						failures.Add(1)
						t.Errorf("reader %d: dns %s failed: %+v", r, name, resp)
						return
					}
					b, err := resp.Marshal()
					if err != nil {
						failures.Add(1)
						t.Errorf("reader %d: marshal: %v", r, err)
						return
					}
					if !matchesAnyGen(string(b), name, wantDNS) {
						failures.Add(1)
						t.Errorf("reader %d: dns response matches no generation", r)
						return
					}
				}
			}
		}(r)
	}

	// Swap through the remaining generations under load, pacing each
	// swap on the query counter so every generation actually serves
	// traffic before being replaced.
	for g := 2; g <= generations; g++ {
		for target := queries.Load() + readers; queries.Load() < target && failures.Load() == 0; {
			time.Sleep(time.Millisecond)
		}
		ix := store.Swap(maps[g], fmt.Sprintf("hash-gen-%d", g))
		if ix.Generation != uint64(g) {
			t.Errorf("swap %d produced generation %d", g, ix.Generation)
		}
	}
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d queries failed or tore", failures.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no queries issued")
	}
	if got := store.Current().Generation; got != generations {
		t.Fatalf("final generation %d, want %d", got, generations)
	}
}

// storeAt wraps a prebuilt index in a throwaway store (for computing
// expected responses without touching the store under test).
func storeAt(ix *Index) *Store {
	s := NewStore()
	s.cur.Store(ix)
	return s
}

// matchesAnyGen reports whether got is byte-identical to some
// generation's expected response for key — i.e. the response is
// consistent with exactly one loaded artifact, never a blend.
func matchesAnyGen(got, key string, want []map[string]string) bool {
	for g := 1; g < len(want); g++ {
		if want[g][key] == got {
			return true
		}
	}
	return false
}

func TestStoreLoadFileDedupesUnchanged(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "map.snap")
	cm := testClientMap(t)
	if _, err := WriteFile(path, cm); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	ix1, changed, err := s.LoadFile(path)
	if err != nil || !changed {
		t.Fatalf("first load: changed=%v err=%v", changed, err)
	}
	// Re-reading the identical file must not bump the generation.
	ix2, changed, err := s.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if changed || ix2.Generation != ix1.Generation {
		t.Fatalf("unchanged artifact bumped generation: %d → %d (changed=%v)", ix1.Generation, ix2.Generation, changed)
	}
	// A genuinely different artifact does.
	if _, err := WriteFile(path, genClientMap(t, 3)); err != nil {
		t.Fatal(err)
	}
	ix3, changed, err := s.LoadFile(path)
	if err != nil || !changed || ix3.Generation != ix1.Generation+1 {
		t.Fatalf("changed artifact: gen %d changed=%v err=%v", ix3.Generation, changed, err)
	}
}

func TestStoreLoadFileErrorKeepsServing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "map.snap")
	if _, err := WriteFile(path, testClientMap(t)); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	if _, _, err := s.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	before := s.Current()

	// Corrupt the file on disk; reload must fail and leave the published
	// index untouched.
	if err := corruptFile(path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadFile(path); err == nil {
		t.Fatal("corrupt artifact loaded")
	}
	if s.Current() != before {
		t.Fatal("failed reload replaced the serving index")
	}
}
