package serve

import (
	"os"
	"testing"
)

// corruptFile flips a byte in the middle of the file.
func corruptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data[len(data)/2] ^= 0xFF
	return os.WriteFile(path, data, 0o644)
}

func TestStoreEmpty(t *testing.T) {
	s := NewStore()
	if s.Current() != nil {
		t.Fatal("empty store published an index")
	}
}

func TestStoreSwapGenerations(t *testing.T) {
	s := NewStore()
	cm := testClientMap(t)
	ix1 := s.Swap(cm, "h1")
	ix2 := s.Swap(cm, "h2")
	if ix1.Generation != 1 || ix2.Generation != 2 {
		t.Fatalf("generations %d, %d", ix1.Generation, ix2.Generation)
	}
	if s.Current() != ix2 {
		t.Fatal("Current is not the last swap")
	}
}
