package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"clientmap/internal/clockx"
	"clientmap/internal/dnsnet"
	"clientmap/internal/dnswire"
	"clientmap/internal/metrics"
)

// serveMetrics groups the daemon's counters; all registered under the
// shared registry so they show up on the debug mux's /metrics ledger.
type serveMetrics struct {
	dnsQueries      *metrics.Counter
	dnsCacheHits    *metrics.Counter
	dnsRateLimited  *metrics.Counter
	httpQueries     *metrics.Counter
	httpCacheHits   *metrics.Counter
	httpRateLimited *metrics.Counter
	reloads         *metrics.Counter
	reloadErrors    *metrics.Counter
	generation      *metrics.Gauge

	drainStarted    *metrics.Counter
	drainDNSDropped *metrics.Counter
	drainTimeouts   *metrics.Counter
	drainCompleted  *metrics.Counter
}

func newServeMetrics(reg *metrics.Registry) *serveMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &serveMetrics{
		dnsQueries:      reg.Counter("serve.dns.queries"),
		dnsCacheHits:    reg.Counter("serve.dns.cache_hits"),
		dnsRateLimited:  reg.Counter("serve.dns.rate_limited"),
		httpQueries:     reg.Counter("serve.http.queries"),
		httpCacheHits:   reg.Counter("serve.http.cache_hits"),
		httpRateLimited: reg.Counter("serve.http.rate_limited"),
		reloads:         reg.Counter("serve.reloads"),
		reloadErrors:    reg.Counter("serve.reload_errors"),
		generation:      reg.Gauge("serve.generation"),
		drainStarted:    reg.Counter("serve.drain.started"),
		drainDNSDropped: reg.Counter("serve.drain.dns_dropped"),
		drainTimeouts:   reg.Counter("serve.drain.timeouts"),
		drainCompleted:  reg.Counter("serve.drain.completed"),
	}
}

// Config parameterizes a Daemon. Zero values take defaults; empty listen
// addresses disable that transport (tests drive the handlers directly).
type Config struct {
	// ArtifactPath is the serve.ClientMap snapshot to load and watch.
	ArtifactPath string
	// HTTPAddr is the JSON API listen address ("" disables; ":0" for an
	// ephemeral port).
	HTTPAddr string
	// DNSAddr is the DNS listen address for both UDP and TCP ("" disables).
	DNSAddr string
	// DebugAddr serves the metrics/pprof mux ("" disables).
	DebugAddr string
	// Zone is the DNS zone answered, canonical form (default DefaultZone).
	Zone string
	// TTL is the answer TTL in seconds (default 60).
	TTL uint32
	// ReloadEvery polls ArtifactPath for changes (0 disables polling;
	// Reload can still be called explicitly).
	ReloadEvery time.Duration
	// CacheShards and CacheCapacity size each response cache (defaults
	// 16 shards × 4096 entries).
	CacheShards   int
	CacheCapacity int
	// RateLimit configures the per-client limiter; a zero struct takes
	// the limiter defaults. Set Rate < 0 to disable limiting entirely.
	RateLimit LimiterConfig
	// Clock drives the limiter and reload poll (nil means wall clock).
	Clock clockx.Clock
	// Metrics is the registry to instrument (nil allocates a private one).
	Metrics *metrics.Registry
}

// Daemon is the serving process: one Store, one limiter, two caches, and
// up to three listeners (HTTP, DNS UDP+TCP, debug). Construct with
// NewDaemon, then Start; Close is idempotent.
type Daemon struct {
	cfg   Config
	store *Store
	met   *serveMetrics
	reg   *metrics.Registry

	dns  *DNSHandler
	http *HTTPHandler

	dnsSrv  *dnsnet.Server
	httpSrv *http.Server
	httpLn  net.Listener
	debug   *metrics.DebugServer

	udpAddr net.Addr
	tcpAddr net.Addr

	stop    chan struct{}
	stopped sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// NewDaemon builds a daemon from cfg without binding sockets or loading
// the artifact; Start does both.
func NewDaemon(cfg Config) *Daemon {
	if cfg.Zone == "" {
		cfg.Zone = DefaultZone
	}
	if cfg.TTL == 0 {
		cfg.TTL = 60
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 16
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = clockx.Real{}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	d := &Daemon{
		cfg:   cfg,
		store: NewStore(),
		met:   newServeMetrics(reg),
		reg:   reg,
		stop:  make(chan struct{}),
	}
	var lim *Limiter
	if cfg.RateLimit.Rate >= 0 {
		lc := cfg.RateLimit
		if lc.Clock == nil {
			lc.Clock = cfg.Clock
		}
		lim = NewLimiter(lc)
	}
	d.dns = &DNSHandler{
		store:  d.store,
		cache:  NewCache[*dnswire.Message](cfg.CacheShards, cfg.CacheCapacity),
		limits: lim,
		zone:   cfg.Zone,
		ttl:    cfg.TTL,
		met:    d.met,
	}
	d.http = &HTTPHandler{
		store:  d.store,
		cache:  NewCache[[]byte](cfg.CacheShards, cfg.CacheCapacity),
		limits: lim,
		met:    d.met,
	}
	return d
}

// Store exposes the daemon's index store (tests swap artifacts through
// it directly).
func (d *Daemon) Store() *Store { return d.store }

// DNSHandler exposes the DNS handler for in-process queries.
func (d *Daemon) DNSHandler() *DNSHandler { return d.dns }

// HTTPHandler exposes the HTTP handler for in-process queries.
func (d *Daemon) HTTPHandler() *HTTPHandler { return d.http }

// Start loads the artifact (if configured) and binds every configured
// listener. On error the daemon is closed and safe to discard.
func (d *Daemon) Start() error {
	if d.cfg.ArtifactPath != "" {
		if _, _, err := d.store.LoadFile(d.cfg.ArtifactPath); err != nil {
			return err
		}
		d.noteLoad()
	}
	if err := d.listen(); err != nil {
		d.Close()
		return err
	}
	if d.cfg.ReloadEvery > 0 && d.cfg.ArtifactPath != "" {
		d.stopped.Add(1)
		go d.reloadLoop()
	}
	return nil
}

func (d *Daemon) listen() error {
	if d.cfg.DNSAddr != "" {
		// TCP binds the UDP port so one -dns flag covers both transports.
		// With an ephemeral port (":0") the kernel picks the UDP port
		// without regard for TCP, so the matching TCP port can already be
		// taken — retry with a fresh pair until both bind.
		var err error
		for attempt := 0; ; attempt++ {
			d.dnsSrv = dnsnet.NewServer(d.dns)
			var ua, ta net.Addr
			if ua, err = d.dnsSrv.ListenUDP(d.cfg.DNSAddr); err != nil {
				return fmt.Errorf("serve: dns udp listen: %w", err)
			}
			if ta, err = d.dnsSrv.ListenTCP(ua.String()); err == nil {
				d.udpAddr, d.tcpAddr = ua, ta
				break
			}
			d.dnsSrv.Close()
			d.dnsSrv = nil
			if _, port, splitErr := net.SplitHostPort(d.cfg.DNSAddr); splitErr != nil || port != "0" || attempt >= 15 {
				return fmt.Errorf("serve: dns tcp listen: %w", err)
			}
		}
	}
	if d.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", d.cfg.HTTPAddr)
		if err != nil {
			return fmt.Errorf("serve: http listen: %w", err)
		}
		d.httpLn = ln
		d.httpSrv = &http.Server{Handler: d.http}
		d.stopped.Add(1)
		go func() {
			defer d.stopped.Done()
			err := d.httpSrv.Serve(ln)
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				// Listener died outside Close; nothing to do but note it.
				d.met.reloadErrors.Inc()
			}
		}()
	}
	if d.cfg.DebugAddr != "" {
		dbg, err := metrics.ServeDebug(d.cfg.DebugAddr, d.reg)
		if err != nil {
			return fmt.Errorf("serve: debug listen: %w", err)
		}
		d.debug = dbg
	}
	return nil
}

// HTTPAddr returns the bound HTTP listen address ("" when disabled).
func (d *Daemon) HTTPAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// DNSUDPAddr returns the bound DNS UDP address ("" when disabled).
func (d *Daemon) DNSUDPAddr() string {
	if d.udpAddr == nil {
		return ""
	}
	return d.udpAddr.String()
}

// DNSTCPAddr returns the bound DNS TCP address ("" when disabled).
func (d *Daemon) DNSTCPAddr() string {
	if d.tcpAddr == nil {
		return ""
	}
	return d.tcpAddr.String()
}

// DebugAddr returns the bound debug mux address ("" when disabled).
func (d *Daemon) DebugAddr() string {
	if d.debug == nil {
		return ""
	}
	return d.debug.Addr()
}

// Reload re-reads the artifact path now. Unchanged artifacts are a no-op;
// errors leave the current index serving and count on reload_errors.
func (d *Daemon) Reload() (changed bool, err error) {
	if d.cfg.ArtifactPath == "" {
		return false, errors.New("serve: no artifact path configured")
	}
	_, changed, err = d.store.LoadFile(d.cfg.ArtifactPath)
	if err != nil {
		d.met.reloadErrors.Inc()
		return false, err
	}
	if changed {
		d.noteLoad()
	}
	return changed, nil
}

func (d *Daemon) noteLoad() {
	d.met.reloads.Inc()
	if ix := d.store.Current(); ix != nil {
		d.met.generation.Set(int64(ix.Generation))
	}
}

// reloadLoop polls the artifact file until Close. Poll errors are
// counted, not fatal: a half-written artifact mid-copy self-heals on the
// next tick.
func (d *Daemon) reloadLoop() {
	defer d.stopped.Done()
	t := time.NewTicker(d.cfg.ReloadEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.Reload() // errors already counted inside
		}
	}
}

// Drain gracefully shuts the daemon down: every listener stops
// accepting, in-flight DNS and HTTP queries get up to timeout to finish
// and write their responses, then everything closes. Returns true when
// nothing in flight was abandoned. Counted under serve.drain.*; a later
// Close is a no-op.
func (d *Daemon) Drain(timeout time.Duration) bool {
	d.closeMu.Lock()
	if d.closed {
		d.closeMu.Unlock()
		return true
	}
	d.closed = true
	close(d.stop)
	d.closeMu.Unlock()

	d.met.drainStarted.Inc()
	clean := true
	if d.dnsSrv != nil {
		if !d.dnsSrv.Drain(timeout) {
			clean = false
			d.met.drainTimeouts.Inc()
		}
		d.met.drainDNSDropped.Add(d.dnsSrv.DrainDropped())
	}
	if d.httpSrv != nil {
		// http.Server.Shutdown is the same contract: stop accepting,
		// wait for in-flight requests, give up at the deadline.
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		if err := d.httpSrv.Shutdown(ctx); err != nil {
			clean = false
			d.met.drainTimeouts.Inc()
		}
		cancel()
	}
	if d.debug != nil {
		d.debug.Close()
	}
	d.stopped.Wait()
	if clean {
		d.met.drainCompleted.Inc()
	}
	return clean
}

// Close shuts every listener down and waits for the reload loop.
func (d *Daemon) Close() error {
	d.closeMu.Lock()
	if d.closed {
		d.closeMu.Unlock()
		return nil
	}
	d.closed = true
	close(d.stop)
	d.closeMu.Unlock()

	var first error
	if d.dnsSrv != nil {
		if err := d.dnsSrv.Close(); err != nil && first == nil {
			first = err
		}
	}
	if d.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := d.httpSrv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		cancel()
	}
	if d.debug != nil {
		if err := d.debug.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.stopped.Wait()
	return first
}
