package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"clientmap/internal/clockx"
)

// testHTTPHandler builds the JSON handler over the fixture index.
func testHTTPHandler(t testing.TB) *HTTPHandler {
	t.Helper()
	store := NewStore()
	store.Swap(testClientMap(t), "fixturehash0001")
	return &HTTPHandler{
		store: store,
		cache: NewCache[[]byte](4, 256),
		met:   newServeMetrics(nil),
	}
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.RemoteAddr = "127.0.0.1:53000"
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHTTPIPActive(t *testing.T) {
	h := testHTTPHandler(t)
	w := get(h, "/v1/ip/192.0.2.17")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp IPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Active || resp.Scope != "192.0.2.0/24" || resp.ASN != 64500 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Hits != 7 || resp.Domains != 2 || resp.Passes != 4 || resp.PassTotal != 4 {
		t.Errorf("evidence = %+v", resp)
	}
	if len(resp.PoPs) != 1 || resp.PoPs[0].PoP != "fra" {
		t.Errorf("pops = %+v", resp.PoPs)
	}
	var prov struct {
		Generation uint64 `json:"generation"`
		Artifact   string `json:"artifact"`
	}
	if err := json.Unmarshal(resp.Provenance, &prov); err != nil {
		t.Fatal(err)
	}
	if prov.Generation != 1 || prov.Artifact != "fixturehash0" {
		t.Errorf("provenance = %+v", prov)
	}
}

func TestHTTPIPInactive(t *testing.T) {
	h := testHTTPHandler(t)
	w := get(h, "/v1/ip/198.51.102.1")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp IPResponse
	json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Active || resp.Scope != "" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.ASN != 64500 {
		t.Errorf("origin missing for announced-inactive space: %+v", resp)
	}
}

func TestHTTPIPBadAddress(t *testing.T) {
	h := testHTTPHandler(t)
	for _, arg := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "01.2.3.4", "a.b.c.d", "1.2.3.4/24", "%00"} {
		if w := get(h, "/v1/ip/"+arg); w.Code != http.StatusBadRequest && w.Code != http.StatusNotFound {
			t.Errorf("ip %q = %d, want 400/404", arg, w.Code)
		}
	}
}

func TestHTTPAS(t *testing.T) {
	h := testHTTPHandler(t)
	var resp ASResponse
	w := get(h, "/v1/as/64500")
	json.Unmarshal(w.Body.Bytes(), &resp)
	if w.Code != http.StatusOK || !resp.Active || resp.Active24s != 3 || resp.Announced24s != 5 {
		t.Fatalf("status %d resp %+v", w.Code, resp)
	}
	w = get(h, "/v1/as/65000")
	json.Unmarshal(w.Body.Bytes(), &resp)
	if w.Code != http.StatusOK || resp.Active {
		t.Fatalf("unknown AS: status %d resp %+v", w.Code, resp)
	}
	for _, arg := range []string{"", "x", "-1", "01", "99999999999"} {
		if w := get(h, "/v1/as/"+arg); w.Code != http.StatusBadRequest {
			t.Errorf("as %q = %d, want 400", arg, w.Code)
		}
	}
}

func TestHTTPSummary(t *testing.T) {
	h := testHTTPHandler(t)
	w := get(h, "/v1/summary")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp SummaryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scopes != 3 || resp.Active24s != 4 || resp.ActiveASes != 2 || resp.Seed != 99 || resp.Scale != "fixture" {
		t.Fatalf("summary = %+v", resp)
	}
}

func TestHTTPHealthz(t *testing.T) {
	empty := &HTTPHandler{store: NewStore(), cache: NewCache[[]byte](1, 8), met: newServeMetrics(nil)}
	if w := get(empty, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("unloaded healthz = %d", w.Code)
	}
	h := testHTTPHandler(t)
	if w := get(h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("loaded healthz = %d", w.Code)
	}
}

func TestHTTPNotFoundAndMethods(t *testing.T) {
	h := testHTTPHandler(t)
	for _, path := range []string{"/", "/v1", "/v1/other", "/v2/ip/1.2.3.4"} {
		if w := get(h, path); w.Code != http.StatusNotFound {
			t.Errorf("%q = %d, want 404", path, w.Code)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/summary", nil)
	req.RemoteAddr = "127.0.0.1:53000"
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d", w.Code)
	}
}

func TestHTTPServiceUnavailableBeforeLoad(t *testing.T) {
	empty := &HTTPHandler{store: NewStore(), cache: NewCache[[]byte](1, 8), met: newServeMetrics(nil)}
	if w := get(empty, "/v1/summary"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("unloaded query = %d", w.Code)
	}
}

// TestHTTPCacheHitBytesIdentical is the satellite property for the HTTP
// path: cached bodies must be byte-identical to cold ones.
func TestHTTPCacheHitBytesIdentical(t *testing.T) {
	h := testHTTPHandler(t)
	paths := []string{"/v1/ip/192.0.2.17", "/v1/ip/8.8.8.8", "/v1/as/64500", "/v1/summary"}
	for _, path := range paths {
		cold := get(h, path).Body.String()
		hot := get(h, path).Body.String()
		if cold != hot {
			t.Fatalf("%s: cache hit changed body\ncold: %s\nhot:  %s", path, cold, hot)
		}
	}
	if h.met.httpCacheHits.Value() == 0 {
		t.Fatal("no cache hits recorded — the property was not exercised")
	}
}

func TestHTTPErrorsNotCached(t *testing.T) {
	h := testHTTPHandler(t)
	get(h, "/v1/ip/notanip")
	if h.cache.Len() != 0 {
		t.Fatalf("error response entered the cache (%d entries)", h.cache.Len())
	}
}

func TestHTTPRateLimit(t *testing.T) {
	h := testHTTPHandler(t)
	clock := clockx.NewSim(clockx.Epoch)
	h.limits = NewLimiter(LimiterConfig{Clock: clock, Rate: 1, Burst: 2})
	var got []int
	for i := 0; i < 3; i++ {
		got = append(got, get(h, "/v1/summary").Code)
	}
	if got[0] != 200 || got[1] != 200 || got[2] != http.StatusTooManyRequests {
		t.Fatalf("codes = %v", got)
	}
	// healthz bypasses the limiter: probes must not be throttled out.
	if w := get(h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz throttled: %d", w.Code)
	}
	if h.met.httpRateLimited.Value() != 1 {
		t.Errorf("rate_limited counter = %d", h.met.httpRateLimited.Value())
	}
}

func TestParseIPv4(t *testing.T) {
	good := map[string][4]byte{
		"0.0.0.0":         {0, 0, 0, 0},
		"255.255.255.255": {255, 255, 255, 255},
		"192.0.2.17":      {192, 0, 2, 17},
	}
	for s, oct := range good {
		a, ok := parseIPv4(s)
		if !ok {
			t.Errorf("parseIPv4(%q) rejected", s)
			continue
		}
		b0, b1, b2, b3 := a.Octets()
		if [4]byte{b0, b1, b2, b3} != oct {
			t.Errorf("parseIPv4(%q) = %v", s, a)
		}
	}
	for _, s := range []string{"", "1", "1.2.3", "1.2.3.4.5", "256.0.0.1", "01.0.0.1", "1.2.3.x", "1.2..4"} {
		if _, ok := parseIPv4(s); ok {
			t.Errorf("parseIPv4(%q) accepted", s)
		}
	}
}
