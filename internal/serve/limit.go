package serve

import (
	"sync"

	"clientmap/internal/clockx"
	"clientmap/internal/dnsnet"
	"clientmap/internal/netx"
)

// Limiter applies a per-client token bucket to both query transports,
// reusing dnsnet.TokenBucket — the same mechanism the Google Public DNS
// model rate-limits probers with. Buckets are striped across shards by
// client address, so the limiter scales with the listeners.
//
// Rejection decisions are a pure function of (client, bucket clock
// history): with a simulated clock, the same query schedule produces the
// same allow/deny sequence every run — the determinism property the
// rate-limit tests pin.
type Limiter struct {
	clock       clockx.Clock
	rate        float64
	burst       float64
	maxPerShard int
	shards      []limitShard
	mask        uint64
}

type limitShard struct {
	mu sync.Mutex
	m  map[netx.Addr]*dnsnet.TokenBucket
	// fifo orders clients by first sight for capacity eviction; a client
	// evicted under memory pressure restarts with a full bucket, which
	// fails open — the safe direction for a serving rate limit.
	fifo []netx.Addr
}

// LimiterConfig parameterizes NewLimiter. Zero values take defaults.
type LimiterConfig struct {
	// Clock drives bucket refill; nil means the wall clock.
	Clock clockx.Clock
	// Rate is tokens (queries) per second per client; <= 0 means 100.
	Rate float64
	// Burst is the bucket depth; < 1 means 2×Rate.
	Burst float64
	// Shards is the stripe count, rounded up to a power of two; <= 0
	// means 16.
	Shards int
	// MaxClientsPerShard bounds tracked clients per stripe; <= 0 means
	// 4096.
	MaxClientsPerShard int
}

// NewLimiter returns a limiter per cfg.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Clock == nil {
		cfg.Clock = clockx.Real{}
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	if cfg.Burst < 1 {
		cfg.Burst = 2 * cfg.Rate
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.MaxClientsPerShard <= 0 {
		cfg.MaxClientsPerShard = 4096
	}
	n := 1
	for n < cfg.Shards {
		n *= 2
	}
	l := &Limiter{
		clock:       cfg.Clock,
		rate:        cfg.Rate,
		burst:       cfg.Burst,
		maxPerShard: cfg.MaxClientsPerShard,
		shards:      make([]limitShard, n),
		mask:        uint64(n - 1),
	}
	for i := range l.shards {
		l.shards[i].m = make(map[netx.Addr]*dnsnet.TokenBucket)
	}
	return l
}

// Allow consumes one token from client's bucket, creating it (full) on
// first sight, and reports whether the query may proceed.
func (l *Limiter) Allow(client netx.Addr) bool {
	s := &l.shards[uint64(client)*0x9e3779b97f4a7c15>>40&l.mask]
	s.mu.Lock()
	b, ok := s.m[client]
	if !ok {
		b = dnsnet.NewTokenBucket(l.clock, l.rate, l.burst)
		s.m[client] = b
		s.fifo = append(s.fifo, client)
		for len(s.m) > l.maxPerShard {
			victim := s.fifo[0]
			s.fifo = s.fifo[1:]
			delete(s.m, victim)
		}
	}
	s.mu.Unlock()
	// The bucket has its own lock; consuming outside the shard lock keeps
	// one slow client from serializing its whole stripe.
	return b.Allow()
}

// Clients returns the number of tracked client buckets.
func (l *Limiter) Clients() int {
	total := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}
