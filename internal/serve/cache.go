package serve

import (
	"sync"
)

// Cache is the sharded response cache in front of the lookup path. It
// stores final response bytes keyed by (generation, query key): entries
// from an older generation never answer a newer index (lookups compare
// generations and treat mismatches as misses), so a hot reload
// implicitly invalidates the whole cache without a stop-the-world sweep.
// Stale entries are overwritten in place on the next store of their key.
//
// Each shard is a mutex-protected map with FIFO eviction bounded by
// capacity — contention is spread by key hash across shards, and the hot
// path inside the lock is one map operation.
type Cache[V any] struct {
	shards []cacheShard[V]
	mask   uint64
	cap    int
}

type cacheShard[V any] struct {
	mu sync.Mutex
	m  map[string]cacheEntry[V]
	// fifo is the insertion order ring; evictions pop from the front.
	fifo []string
}

type cacheEntry[V any] struct {
	gen uint64
	val V
}

// NewCache returns a cache with the given shard count (rounded up to a
// power of two, minimum 1) and per-shard entry capacity (minimum 1).
func NewCache[V any](shards, capacity int) *Cache[V] {
	n := 1
	for n < shards {
		n *= 2
	}
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache[V]{shards: make([]cacheShard[V], n), mask: uint64(n - 1), cap: capacity}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry[V])
	}
	return c
}

// fnv64a matches the snapshot checksum's hash; keys are short, so the
// byte loop beats importing hash/fnv's interface machinery.
func cacheHash(key string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache[V]) shard(key string) *cacheShard[V] {
	return &c.shards[cacheHash(key)&c.mask]
}

// Get returns the cached response for key under gen. A hit from a
// different generation is a miss. The returned value is the cached one;
// callers must treat it as immutable.
func (c *Cache[V]) Get(gen uint64, key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok || e.gen != gen {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Put stores val for key under gen, evicting the oldest entries of the
// shard past capacity. The caller must not mutate val afterwards.
func (c *Cache[V]) Put(gen uint64, key string, val V) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[key]; !exists {
		s.fifo = append(s.fifo, key)
	}
	s.m[key] = cacheEntry[V]{gen: gen, val: val}
	for len(s.m) > c.cap {
		victim := s.fifo[0]
		s.fifo = s.fifo[1:]
		delete(s.m, victim)
	}
}

// Len returns the total number of cached entries across shards.
func (c *Cache[V]) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// ShardLens returns each shard's entry count — the capacity property the
// eviction tests assert on.
func (c *Cache[V]) ShardLens() []int {
	out := make([]int, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = len(s.m)
		s.mu.Unlock()
	}
	return out
}
