package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Store publishes the daemon's current Index. Swapping in a new artifact
// is one atomic pointer store; readers grab the pointer once per query
// and keep it, so a reload never tears a response — each response is
// computed entirely against one generation.
type Store struct {
	cur atomic.Pointer[Index]
	gen atomic.Uint64

	// reloadMu serializes swaps (reload is rare and cheap to serialize;
	// lookups never touch it).
	reloadMu sync.Mutex
	// lastHash dedupes reloads: re-reading an unchanged artifact file
	// must not bump the generation or invalidate the response cache.
	lastHash string
}

// NewStore returns an empty store; Current returns nil until the first
// Swap or LoadFile.
func NewStore() *Store { return &Store{} }

// Current returns the published index, or nil before the first load.
func (s *Store) Current() *Index { return s.cur.Load() }

// Swap compiles cm under the next generation and publishes it, returning
// the new index.
func (s *Store) Swap(cm *ClientMap, hash string) *Index {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.swapLocked(cm, hash)
}

func (s *Store) swapLocked(cm *ClientMap, hash string) *Index {
	ix := NewIndex(cm, s.gen.Add(1), hash)
	s.lastHash = hash
	s.cur.Store(ix)
	return ix
}

// LoadFile reads, validates, compiles and publishes the artifact at
// path. Re-loading a byte-identical artifact is a no-op that returns the
// already-published index (changed reports whether a swap happened). Any
// error leaves the currently published index serving.
func (s *Store) LoadFile(path string) (ix *Index, changed bool, err error) {
	cm, hash, err := ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if cur := s.cur.Load(); cur != nil && s.lastHash == hash {
		return cur, false, nil
	}
	return s.swapLocked(cm, hash), true, nil
}
