package serve

import (
	"math/rand"
	"testing"

	"clientmap/internal/netx"
)

func TestLookup24Active(t *testing.T) {
	ix := testIndex(t)

	// Direct /24 scope.
	res := ix.LookupAddr(netx.AddrFrom4(192, 0, 2, 17))
	if !res.Active || res.Scope.String() != "192.0.2.0/24" {
		t.Fatalf("192.0.2.17 = %+v", res)
	}
	if res.Evidence == nil || res.Evidence.Hits != 7 {
		t.Errorf("evidence = %+v", res.Evidence)
	}
	if !res.HasASN || res.ASN != 64500 {
		t.Errorf("origin = %d (has %v), want AS64500", res.ASN, res.HasASN)
	}

	// Both /24s under the /23 scope resolve to it.
	for _, a := range []netx.Addr{netx.AddrFrom4(198, 51, 100, 1), netx.AddrFrom4(198, 51, 101, 250)} {
		res := ix.LookupAddr(a)
		if !res.Active || res.Scope.String() != "198.51.100.0/23" {
			t.Errorf("%v = %+v", a, res)
		}
	}

	// The /25 scope answers for its containing /24 via the CoveredBy
	// fallback — even for addresses in the other half of the /24.
	for _, host := range []byte{1, 200} {
		res := ix.LookupAddr(netx.AddrFrom4(203, 0, 113, host))
		if !res.Active || res.Scope.String() != "203.0.113.128/25" {
			t.Errorf("203.0.113.%d = %+v", host, res)
		}
	}
}

func TestLookup24Inactive(t *testing.T) {
	ix := testIndex(t)

	// Announced but never hit: inactive, but the origin is still known.
	res := ix.LookupAddr(netx.AddrFrom4(198, 51, 102, 1))
	if res.Active || res.Evidence != nil {
		t.Fatalf("announced-inactive space = %+v", res)
	}
	if !res.HasASN || res.ASN != 64500 {
		t.Errorf("origin lost for inactive space: %+v", res)
	}

	// Unannounced space: no activity, no origin.
	res = ix.LookupAddr(netx.AddrFrom4(8, 8, 8, 8))
	if res.Active || res.HasASN {
		t.Fatalf("unannounced space = %+v", res)
	}
}

func TestLookupAS(t *testing.T) {
	ix := testIndex(t)
	a, ok := ix.LookupAS(64500)
	if !ok || a.Active24s != 3 || a.Announced24s != 5 {
		t.Errorf("AS64500 = %+v (found %v)", a, ok)
	}
	if _, ok := ix.LookupAS(65000); ok {
		t.Error("unknown AS reported active")
	}
}

func TestIndexStats(t *testing.T) {
	st := testIndex(t).Stats()
	want := Stats{Scopes: 3, Active24s: 4, ActiveASes: 2, Origins: 3, TrafficBins: 3}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

func TestSampleTraffic(t *testing.T) {
	ix := testIndex(t)

	// u=0 lands in the first (lowest-/24) bin; u→1 in the last.
	first, ok := ix.SampleTraffic(0)
	if !ok {
		t.Fatal("no traffic bins")
	}
	last, _ := ix.SampleTraffic(0.999999)
	if first >= last {
		t.Errorf("sample order broken: first %v, last %v", first, last)
	}

	// Sampling is deterministic in u and respects the weights: with
	// weights 10/5/1 over sorted bins, the heaviest /24 should draw a
	// clear majority under uniform u.
	counts := map[netx.Slash24]int{}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		p, ok := ix.SampleTraffic(r.Float64())
		if !ok {
			t.Fatal("sample failed")
		}
		counts[p]++
	}
	heavy := netx.AddrFrom4(192, 0, 2, 0).Slash24()
	if frac := float64(counts[heavy]) / 4000; frac < 0.55 || frac > 0.70 {
		t.Errorf("heavy bin drew %.2f of samples, want ~10/16", frac)
	}

	// An index with no traffic reports ok=false.
	empty := NewIndex(&ClientMap{Meta: testMeta()}, 1, "x")
	if _, ok := empty.SampleTraffic(0.5); ok {
		t.Error("empty index produced a traffic sample")
	}
}

func TestSortedASNs(t *testing.T) {
	asns := testIndex(t).SortedASNs()
	if len(asns) != 2 || asns[0] != 64500 || asns[1] != 64501 {
		t.Fatalf("SortedASNs = %v", asns)
	}
}

func TestIndexConcurrentLookups(t *testing.T) {
	// Smoke the lock-free claim under the race detector: many goroutines
	// reading one index concurrently.
	ix := testIndex(t)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				a := netx.Addr(r.Uint32())
				ix.LookupAddr(a)
				ix.LookupAS(uint32(r.Intn(70000)))
				ix.SampleTraffic(r.Float64())
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
