package serve

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"clientmap/internal/clockx"
	"clientmap/internal/dnswire"
	"clientmap/internal/netx"
)

// testDNSHandler builds a handler over the fixture index with no rate
// limit (tests that need one install their own).
func testDNSHandler(t testing.TB) (*DNSHandler, *Store) {
	t.Helper()
	store := NewStore()
	store.Swap(testClientMap(t), "fixturehash0001")
	h := &DNSHandler{
		store: store,
		cache: NewCache[*dnswire.Message](4, 256),
		zone:  DefaultZone,
		ttl:   60,
		met:   newServeMetrics(nil),
	}
	return h, store
}

func TestParseReverseNameRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2021))
	for i := 0; i < 2000; i++ {
		a := netx.Addr(r.Uint32())
		name := FormatReverseName(a, DefaultZone)
		got, ok := ParseReverseName(name, DefaultZone)
		if !ok || got != a {
			t.Fatalf("round trip broke for %v: name %q parsed to %v (ok %v)", a, name, got, ok)
		}
	}
}

func TestParseReverseNameRejects(t *testing.T) {
	bad := []string{
		"",
		"clientmap",
		"1.2.3.clientmap",         // three octets
		"1.2.3.4.5.clientmap",     // five octets
		"256.0.0.1.clientmap",     // octet out of range
		"1.2.3.999.clientmap",     // octet out of range
		"01.2.3.4.clientmap",      // leading zero
		"00.2.3.4.clientmap",      // leading zero
		"1.2.3.4.otherzone",       // wrong zone
		"1.2.3.4.clientmap.extra", // trailing garbage
		"a.2.3.4.clientmap",       // non-digit
		"-1.2.3.4.clientmap",      // sign
		"1..3.4.clientmap",        // empty label
		"1.2.3.4444.clientmap",    // four digits
		"1.2.3.4.as.clientmap",    // AS form is not a reverse name
		" 1.2.3.4.clientmap",      // whitespace
		"1.2.3.4.clientmap ",      // whitespace
		"1.2.3.+4.clientmap",      // plus sign
		"0x1.2.3.4.clientmap",     // hex
		"1.2.3.4.cli",             // truncated zone
		strings.Repeat("1.", 200), // hostile length
	}
	for _, name := range bad {
		if a, ok := ParseReverseName(name, DefaultZone); ok {
			t.Errorf("ParseReverseName(%q) accepted as %v", name, a)
		}
	}
}

func TestParseASName(t *testing.T) {
	for _, asn := range []uint32{0, 1, 64500, 4294967295} {
		name := FormatASName(asn, DefaultZone)
		got, ok := ParseASName(name, DefaultZone)
		if !ok || got != asn {
			t.Fatalf("AS round trip broke for %d: %q → %d (%v)", asn, name, got, ok)
		}
	}
	for _, bad := range []string{
		"as.clientmap", ".as.clientmap", "01.as.clientmap",
		"4294967296.as.clientmap", "99999999999.as.clientmap",
		"x.as.clientmap", "64500.as.other", "64500.clientmap",
	} {
		if got, ok := ParseASName(bad, DefaultZone); ok {
			t.Errorf("ParseASName(%q) accepted as %d", bad, got)
		}
	}
}

func query(name string, qt dnswire.Type) *dnswire.Message {
	return dnswire.NewQuery(4242, name, qt)
}

func serveOne(h *DNSHandler, q *dnswire.Message) *dnswire.Message {
	return h.ServeDNS(context.Background(), netx.AddrFrom4(127, 0, 0, 1), q)
}

func TestDNSActiveA(t *testing.T) {
	h, _ := testDNSHandler(t)
	r := serveOne(h, query("17.2.0.192.clientmap", dnswire.TypeA))
	if r.ID != 4242 || !r.Response || r.RCode != dnswire.RCodeSuccess {
		t.Fatalf("header = %+v", r)
	}
	if len(r.Answers) != 1 {
		t.Fatalf("answers = %+v", r.Answers)
	}
	a, ok := r.Answers[0].Data.(dnswire.A)
	if !ok || a.Addr != ActiveA {
		t.Fatalf("answer = %+v", r.Answers[0])
	}
}

func TestDNSActiveTXT(t *testing.T) {
	h, _ := testDNSHandler(t)
	r := serveOne(h, query("17.2.0.192.clientmap", dnswire.TypeTXT))
	if len(r.Answers) != 1 {
		t.Fatalf("answers = %+v", r.Answers)
	}
	txt, ok := r.Answers[0].Data.(dnswire.TXT)
	if !ok || len(txt.Strings) != 1 {
		t.Fatalf("answer = %+v", r.Answers[0])
	}
	s := txt.Strings[0]
	for _, want := range []string{"active=1", "scope=192.0.2.0/24", "asn=64500", "pops=fra:7", "gen=1", "passes=4/4"} {
		if !strings.Contains(s, want) {
			t.Errorf("TXT %q missing %q", s, want)
		}
	}
	if len(s) > 255 {
		t.Errorf("TXT string %d bytes exceeds one character-string", len(s))
	}
}

func TestDNSInactiveNXDomain(t *testing.T) {
	h, _ := testDNSHandler(t)
	r := serveOne(h, query("1.1.168.192.clientmap", dnswire.TypeA))
	if r.RCode != dnswire.RCodeNXDomain || len(r.Answers) != 0 {
		t.Fatalf("inactive = %+v", r)
	}
	if len(r.Authority) != 1 {
		t.Fatalf("authority = %+v", r.Authority)
	}
	if _, ok := r.Authority[0].Data.(dnswire.SOA); !ok {
		t.Fatalf("authority RR = %+v", r.Authority[0])
	}
}

func TestDNSASQuery(t *testing.T) {
	h, _ := testDNSHandler(t)
	r := serveOne(h, query("64500.as.clientmap", dnswire.TypeTXT))
	if r.RCode != dnswire.RCodeSuccess || len(r.Answers) != 1 {
		t.Fatalf("as query = %+v", r)
	}
	s := r.Answers[0].Data.(dnswire.TXT).Strings[0]
	for _, want := range []string{"asn=64500", "active24=3", "announced24=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("AS TXT %q missing %q", s, want)
		}
	}
	if r = serveOne(h, query("65000.as.clientmap", dnswire.TypeA)); r.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("unknown AS = %+v", r)
	}
}

func TestDNSApexSOA(t *testing.T) {
	h, _ := testDNSHandler(t)
	r := serveOne(h, query("clientmap", dnswire.TypeSOA))
	if r.RCode != dnswire.RCodeSuccess || len(r.Answers) != 1 {
		t.Fatalf("apex SOA = %+v", r)
	}
	soa := r.Answers[0].Data.(dnswire.SOA)
	if soa.Serial != 1 {
		t.Errorf("SOA serial = %d, want generation 1", soa.Serial)
	}
}

func TestDNSRefusesOutOfZone(t *testing.T) {
	h, _ := testDNSHandler(t)
	for _, name := range []string{"example.com", "17.2.0.192.example.com", "notclientmap"} {
		if r := serveOne(h, query(name, dnswire.TypeA)); r.RCode != dnswire.RCodeRefused {
			t.Errorf("%q = rcode %v, want REFUSED", name, r.RCode)
		}
	}
}

func TestDNSNotImp(t *testing.T) {
	h, _ := testDNSHandler(t)
	resp := query("17.2.0.192.clientmap", dnswire.TypeA)
	resp.Response = true
	if r := serveOne(h, resp); r.RCode != dnswire.RCodeNotImp {
		t.Fatalf("response-bit query = %v", r.RCode)
	}
	empty := &dnswire.Message{ID: 9}
	if r := serveOne(h, empty); r.RCode != dnswire.RCodeNotImp {
		t.Fatalf("question-less query = %v", r.RCode)
	}
}

func TestDNSServFailBeforeLoad(t *testing.T) {
	h := &DNSHandler{
		store: NewStore(),
		cache: NewCache[*dnswire.Message](1, 8),
		zone:  DefaultZone,
		ttl:   60,
		met:   newServeMetrics(nil),
	}
	if r := serveOne(h, query("1.2.0.192.clientmap", dnswire.TypeA)); r.RCode != dnswire.RCodeServFail {
		t.Fatalf("empty store = %v", r.RCode)
	}
}

func TestDNSMixedCaseCanonicalized(t *testing.T) {
	h, _ := testDNSHandler(t)
	r := serveOne(h, query("17.2.0.192.CLIENTMAP.", dnswire.TypeA))
	if r.RCode != dnswire.RCodeSuccess || len(r.Answers) != 1 {
		t.Fatalf("mixed-case query = %+v", r)
	}
}

// TestDNSCacheHitBytesIdentical is the satellite property for the DNS
// path: a cached response must marshal to exactly the cold response's
// wire bytes (modulo the echoed query ID, held equal here).
func TestDNSCacheHitBytesIdentical(t *testing.T) {
	h, _ := testDNSHandler(t)
	names := []string{
		"17.2.0.192.clientmap", "1.100.51.198.clientmap",
		"64500.as.clientmap", "9.9.9.9.clientmap", "clientmap",
	}
	for _, name := range names {
		for _, qt := range []dnswire.Type{dnswire.TypeA, dnswire.TypeTXT, dnswire.TypeSOA} {
			cold := serveOne(h, query(name, qt))
			coldBytes, err := cold.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			hot := serveOne(h, query(name, qt))
			hotBytes, err := hot.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if string(coldBytes) != string(hotBytes) {
				t.Fatalf("%s %v: cache hit changed wire bytes", name, qt)
			}
		}
	}
	if h.met.dnsCacheHits.Value() == 0 {
		t.Fatal("no cache hits recorded — the property was not exercised")
	}
}

func TestDNSCacheHitPreservesDistinctIDs(t *testing.T) {
	h, _ := testDNSHandler(t)
	serveOne(h, query("17.2.0.192.clientmap", dnswire.TypeA))
	r := h.ServeDNS(context.Background(), netx.AddrFrom4(127, 0, 0, 1),
		dnswire.NewQuery(7, "17.2.0.192.clientmap", dnswire.TypeA))
	if r.ID != 7 {
		t.Fatalf("cached response carries ID %d, want the query's 7", r.ID)
	}
}

func TestDNSRateLimitRefuses(t *testing.T) {
	h, _ := testDNSHandler(t)
	clock := clockx.NewSim(clockx.Epoch)
	h.limits = NewLimiter(LimiterConfig{Clock: clock, Rate: 1, Burst: 2})
	client := netx.AddrFrom4(10, 1, 2, 3)
	q := query("17.2.0.192.clientmap", dnswire.TypeA)
	for i := 0; i < 2; i++ {
		if r := h.ServeDNS(context.Background(), client, q); r.RCode != dnswire.RCodeSuccess {
			t.Fatalf("burst query %d = %v", i, r.RCode)
		}
	}
	if r := h.ServeDNS(context.Background(), client, q); r.RCode != dnswire.RCodeRefused {
		t.Fatalf("over-limit query = %v, want REFUSED", r.RCode)
	}
	if h.met.dnsRateLimited.Value() != 1 {
		t.Errorf("rate_limited counter = %d", h.met.dnsRateLimited.Value())
	}
}
