package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clientmap/internal/dnsnet"
	"clientmap/internal/dnswire"
	"clientmap/internal/metrics"
)

// startDaemon writes the fixture artifact to disk and boots a daemon on
// ephemeral ports with every transport enabled.
func startDaemon(t *testing.T, cm *ClientMap) (*Daemon, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "map.snap")
	if _, err := WriteFile(path, cm); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(Config{
		ArtifactPath: path,
		HTTPAddr:     "127.0.0.1:0",
		DNSAddr:      "127.0.0.1:0",
		DebugAddr:    "127.0.0.1:0",
		Metrics:      metrics.NewRegistry(),
		// The limiter has its own tests; end-to-end tests blast from one
		// client address and must not be throttled.
		RateLimit: LimiterConfig{Rate: -1},
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, path
}

func TestDaemonEndToEnd(t *testing.T) {
	d, path := startDaemon(t, testClientMap(t))

	// HTTP over a real socket.
	resp, err := http.Get("http://" + d.HTTPAddr() + "/v1/ip/192.0.2.17")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("http status %d: %s", resp.StatusCode, body)
	}
	var ip IPResponse
	if err := json.Unmarshal(body, &ip); err != nil {
		t.Fatal(err)
	}
	if !ip.Active || ip.ASN != 64500 {
		t.Fatalf("http response = %+v", ip)
	}

	// healthz.
	if resp, err = http.Get("http://" + d.HTTPAddr() + "/healthz"); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// DNS over UDP and TCP against the same bound port.
	q := dnswire.NewQuery(31337, "17.2.0.192.clientmap", dnswire.TypeA)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	udp := &dnsnet.UDPClient{Timeout: 3 * time.Second}
	r, err := udp.Exchange(ctx, d.DNSUDPAddr(), q)
	if err != nil {
		t.Fatalf("udp exchange: %v", err)
	}
	if r.ID != 31337 || r.RCode != dnswire.RCodeSuccess || len(r.Answers) != 1 {
		t.Fatalf("udp response = %+v", r)
	}
	if a, ok := r.Answers[0].Data.(dnswire.A); !ok || a.Addr != ActiveA {
		t.Fatalf("udp answer = %+v", r.Answers[0])
	}
	tcp := &dnsnet.TCPClient{Timeout: 3 * time.Second}
	if r, err = tcp.Exchange(ctx, d.DNSTCPAddr(), q); err != nil {
		t.Fatalf("tcp exchange: %v", err)
	}
	if r.RCode != dnswire.RCodeSuccess || len(r.Answers) != 1 {
		t.Fatalf("tcp response = %+v", r)
	}
	if d.DNSUDPAddr() != d.DNSTCPAddr() {
		t.Errorf("udp %s and tcp %s differ; one -dns flag should cover both", d.DNSUDPAddr(), d.DNSTCPAddr())
	}

	// Debug mux exposes the serve counters.
	if resp, err = http.Get("http://" + d.DebugAddr() + "/metrics"); err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve.dns.queries", "serve.http.queries", "serve.generation"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("debug /metrics missing %q", want)
		}
	}

	// Reload: unchanged file is a no-op, changed file bumps the generation
	// without dropping the socket.
	if changed, err := d.Reload(); err != nil || changed {
		t.Fatalf("no-op reload: changed=%v err=%v", changed, err)
	}
	gen1 := d.Store().Current().Generation
	if _, err := WriteFile(path, genClientMap(t, 7)); err != nil {
		t.Fatal(err)
	}
	if changed, err := d.Reload(); err != nil || !changed {
		t.Fatalf("real reload: changed=%v err=%v", changed, err)
	}
	if got := d.Store().Current().Generation; got != gen1+1 {
		t.Fatalf("generation %d after reload, want %d", got, gen1+1)
	}
	if r, err = udp.Exchange(ctx, d.DNSUDPAddr(), q); err != nil || r.RCode != dnswire.RCodeSuccess {
		t.Fatalf("post-reload udp: %v %+v", err, r)
	}
}

func TestDaemonPollReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.snap")
	if _, err := WriteFile(path, testClientMap(t)); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(Config{
		ArtifactPath: path,
		ReloadEvery:  5 * time.Millisecond,
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if _, err := WriteFile(path, genClientMap(t, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Store().Current().Generation < 2 {
		if time.Now().After(deadline) {
			t.Fatal("poll loop never picked up the new artifact")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDaemonStartMissingArtifact(t *testing.T) {
	d := NewDaemon(Config{ArtifactPath: filepath.Join(t.TempDir(), "absent.snap")})
	if err := d.Start(); err == nil {
		d.Close()
		t.Fatal("Start succeeded without an artifact")
	}
}

func TestDaemonCloseIdempotent(t *testing.T) {
	d, _ := startDaemon(t, testClientMap(t))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestDaemonRateLimitDisabled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.snap")
	if _, err := WriteFile(path, testClientMap(t)); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(Config{
		ArtifactPath: path,
		RateLimit:    LimiterConfig{Rate: -1},
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.HTTPHandler().limits != nil || d.DNSHandler().limits != nil {
		t.Fatal("Rate < 0 did not disable the limiter")
	}
	// A burst far over any default limit all succeeds in-process.
	for i := 0; i < 500; i++ {
		if w := get(d.HTTPHandler(), "/v1/summary"); w.Code != http.StatusOK {
			t.Fatalf("query %d = %d with limiter disabled", i, w.Code)
		}
	}
}

func TestDaemonSOASerialTracksGeneration(t *testing.T) {
	d, path := startDaemon(t, testClientMap(t))
	if _, err := WriteFile(path, genClientMap(t, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Reload(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	udp := &dnsnet.UDPClient{Timeout: 3 * time.Second}
	r, err := udp.Exchange(ctx, d.DNSUDPAddr(), dnswire.NewQuery(1, "clientmap", dnswire.TypeSOA))
	if err != nil {
		t.Fatal(err)
	}
	soa, ok := r.Answers[0].Data.(dnswire.SOA)
	if !ok {
		t.Fatalf("apex answer = %+v", r.Answers[0])
	}
	if want := d.Store().Current().Generation; uint64(soa.Serial) != want {
		t.Fatalf("SOA serial %d, want generation %d", soa.Serial, want)
	}
}
