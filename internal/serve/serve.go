// Package serve is the read path of the client-activity map: everything
// else in this module *produces* the map (campaigns, DITL crawls, dataset
// views), and this package answers queries against it at production rates.
//
// The serving pipeline is
//
//	campaign/dataset artifacts ──Build──▶ ClientMap (snapshot on disk)
//	      ClientMap ──NewIndex──▶ Index (immutable, query-ready)
//	      Index ──Store.Swap──▶ the daemon's atomically published view
//
// A ClientMap is the interchange artifact: a compact, versioned snapshot
// (internal/snapshot container) holding the active scopes with their
// evidence, the AS aggregate, the announced prefix→AS mapping and the
// world-model client-traffic weights the load generator replays. An Index
// compiles one ClientMap into immutable lookup structures — a
// longest-prefix-match trie over hit scopes, a /24 membership bitmap, a
// flat AS table — that are never mutated after construction, so any
// number of goroutines query them without locks. Hot reload builds a
// fresh Index off to the side and publishes it with one atomic pointer
// swap; in-flight queries keep the Index they started with, which is what
// makes every response consistent with exactly one artifact generation.
package serve

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/netx"
	"clientmap/internal/routeviews"
)

// PoPEvidence is one PoP's contribution to a scope's activity claim.
type PoPEvidence struct {
	// PoP is the site whose cache held the entry.
	PoP string
	// Hits is how many probes hit at this PoP.
	Hits int
}

// ScopeEvidence is the serving view of one active scope prefix: the
// aggregated evidence across probe domains and PoPs.
type ScopeEvidence struct {
	// Scope is the ECS response scope the activity claim covers.
	Scope netx.Prefix
	// Hits is the total probe hits across domains and PoPs.
	Hits int
	// PassMask has bit k set if campaign pass k produced a hit.
	PassMask uint64
	// PoPs lists the corroborating sites, sorted by name.
	PoPs []PoPEvidence
	// Domains counts the distinct probe domains that hit.
	Domains int
	// Confidence is the Laplace-smoothed fraction of campaign passes with
	// a hit: (passesHit + 1) / (passes + 2). A scope seen in every pass of
	// a long campaign approaches 1; a single-pass flash stays near 1/2 of
	// the single-pass ceiling. Deterministic, and monotone in temporal
	// consistency — the property the paper's activity extension ranks by.
	Confidence float64
}

// ASEvidence is the AS-granularity aggregate of the map.
type ASEvidence struct {
	ASN uint32
	// Active24s counts announced /24s of this AS inside active scopes.
	Active24s int
	// Announced24s is the AS's announced /24 footprint.
	Announced24s int
	// Confidence is the maximum scope confidence observed over the AS's
	// active /24s.
	Confidence float64
}

// Origin maps one announced prefix to its origin ASN — the BGP table the
// daemon answers "which AS is this" from.
type Origin struct {
	Prefix netx.Prefix
	ASN    uint32
}

// TrafficBin is one /24's share of world-model client traffic; the load
// generator replays queries proportional to these weights.
type TrafficBin struct {
	Slash24 netx.Slash24
	Weight  float64
}

// Meta identifies the campaign a ClientMap was compiled from.
type Meta struct {
	// Seed and Scale name the world the campaign measured.
	Seed  uint64
	Scale string
	// Passes is the campaign pass count (the confidence denominator).
	Passes int
	// BuiltAt is the (simulated) instant the map was compiled.
	BuiltAt time.Time
	// Source describes the producing configuration, for operators.
	Source string
}

// ClientMap is the serving artifact: the compiled client-activity map a
// clientmapd instance loads, plus the traffic weights its load generator
// replays. All slices are sorted (scopes and origins by (addr, bits),
// ASes by ASN, traffic by /24, PoPs by name), so a given map always
// encodes to the same snapshot bytes.
type ClientMap struct {
	Meta    Meta
	Scopes  []ScopeEvidence
	ASes    []ASEvidence
	Origins []Origin
	Traffic []TrafficBin
}

// BuildInput is everything Build compiles a ClientMap from.
type BuildInput struct {
	Meta     Meta
	Campaign *cacheprobe.Campaign
	// RV is the announced-space table; nil produces a map without AS
	// evidence or origins (prefix-only serving).
	RV *routeviews.Table
	// ClientVolume carries world-model per-/24 client traffic (the CDN
	// clients view); nil falls back to uniform weight over active /24s.
	ClientVolume map[netx.Slash24]float64
}

// Build compiles the serving artifact from a finished campaign. The
// aggregation is deterministic: maps are folded in sorted key order and
// every output slice is sorted, so two builds from the same campaign are
// byte-identical once encoded.
func Build(in BuildInput) *ClientMap {
	if in.Meta.Passes <= 0 && in.Campaign != nil {
		in.Meta.Passes = in.Campaign.Passes
	}
	var scopes []ScopeEvidence
	if in.Campaign != nil {
		scopes = buildScopes(in.Campaign, in.Meta.Passes)
	}
	return Assemble(in.Meta, scopes, in.RV, in.ClientVolume)
}

// Assemble compiles a serving artifact from an already-aggregated scope
// list: the shared back half of Build, exported for producers whose
// evidence does not live in a cacheprobe.Campaign — the streaming mode
// folds its decay ledger into ScopeEvidence rows and assembles a rolling
// map every emitted hour. The scopes slice must be sorted by scope
// prefix with per-entry invariants satisfying Validate; Assemble derives
// the AS evidence, origins and traffic weights from it the same way
// Build does.
func Assemble(meta Meta, scopes []ScopeEvidence, rv *routeviews.Table, volume map[netx.Slash24]float64) *ClientMap {
	cm := &ClientMap{Meta: meta, Scopes: scopes}
	if rv != nil {
		cm.Origins = buildOrigins(rv)
		cm.ASes = buildASes(cm.Scopes, rv)
	}
	cm.Traffic = buildTraffic(cm.Scopes, volume)
	return cm
}

func prefixLess(a, b netx.Prefix) bool {
	if a.Addr() != b.Addr() {
		return a.Addr() < b.Addr()
	}
	return a.Bits() < b.Bits()
}

// buildScopes folds Campaign.Hits (domain → scope → evidence) into one
// sorted entry per distinct scope.
func buildScopes(camp *cacheprobe.Campaign, passes int) []ScopeEvidence {
	agg := make(map[netx.Prefix]*ScopeEvidence)
	pops := make(map[netx.Prefix]map[string]int)
	domains := make([]string, 0, len(camp.Hits))
	for d := range camp.Hits {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, domain := range domains {
		hits := camp.Hits[domain]
		scopes := make([]netx.Prefix, 0, len(hits))
		for p := range hits {
			scopes = append(scopes, p)
		}
		sort.Slice(scopes, func(i, j int) bool { return prefixLess(scopes[i], scopes[j]) })
		for _, p := range scopes {
			h := hits[p]
			e := agg[p]
			if e == nil {
				e = &ScopeEvidence{Scope: p}
				agg[p] = e
				pops[p] = make(map[string]int)
			}
			e.Hits += h.Count
			e.PassMask |= h.PassMask
			e.Domains++
			if h.PoP != "" {
				pops[p][h.PoP] += h.Count
			}
		}
	}

	out := make([]ScopeEvidence, 0, len(agg))
	for p, e := range agg {
		names := make([]string, 0, len(pops[p]))
		for name := range pops[p] {
			names = append(names, name)
		}
		sort.Strings(names)
		e.PoPs = make([]PoPEvidence, 0, len(names))
		for _, name := range names {
			e.PoPs = append(e.PoPs, PoPEvidence{PoP: name, Hits: pops[p][name]})
		}
		e.Confidence = Confidence(e.PassMask, passes)
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return prefixLess(out[i].Scope, out[j].Scope) })
	return out
}

// Confidence is the Laplace-smoothed hit-pass fraction described on
// ScopeEvidence.Confidence. Exported so consumers (and tests) derive the
// same number from raw evidence.
func Confidence(passMask uint64, passes int) float64 {
	if passes <= 0 {
		passes = 1
	}
	hit := bits.OnesCount64(passMask)
	if hit > passes {
		hit = passes
	}
	return float64(hit+1) / float64(passes+2)
}

func buildOrigins(rv *routeviews.Table) []Origin {
	out := make([]Origin, 0, rv.Len())
	rv.Walk(func(p netx.Prefix, asn uint32) bool {
		out = append(out, Origin{Prefix: p, ASN: asn})
		return true
	})
	// Walk is already in (addr, least-specific-first) order; keep the
	// explicit sort as the canonical-form guarantee the codec relies on.
	sort.Slice(out, func(i, j int) bool { return prefixLess(out[i].Prefix, out[j].Prefix) })
	return out
}

// buildASes aggregates active /24s per origin AS over the scope set.
func buildASes(scopes []ScopeEvidence, rv *routeviews.Table) []ASEvidence {
	agg := make(map[uint32]*ASEvidence)
	covered := &netx.Set24{}
	for _, e := range scopes {
		e := e
		e.Scope.Slash24s(func(p netx.Slash24) bool {
			if !covered.Add(p) {
				return true // a more specific scope already counted it
			}
			asn, ok := rv.ASNOf(p.Addr())
			if !ok {
				return true
			}
			a := agg[asn]
			if a == nil {
				a = &ASEvidence{ASN: asn, Announced24s: rv.Announced24s(asn)}
				agg[asn] = a
			}
			a.Active24s++
			if e.Confidence > a.Confidence {
				a.Confidence = e.Confidence
			}
			return true
		})
	}
	out := make([]ASEvidence, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// buildTraffic derives the load-replay weights: the world-model client
// volume where available, else uniform weight over the active /24s.
func buildTraffic(scopes []ScopeEvidence, volume map[netx.Slash24]float64) []TrafficBin {
	out := make([]TrafficBin, 0, len(volume))
	if len(volume) > 0 {
		keys := make([]netx.Slash24, 0, len(volume))
		for p := range volume {
			keys = append(keys, p)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, p := range keys {
			if v := volume[p]; v > 0 {
				out = append(out, TrafficBin{Slash24: p, Weight: v})
			}
		}
		return out
	}
	seen := &netx.Set24{}
	for _, e := range scopes {
		e.Scope.Slash24s(func(p netx.Slash24) bool {
			seen.Add(p)
			return true
		})
	}
	seen.Range(func(p netx.Slash24) bool {
		out = append(out, TrafficBin{Slash24: p, Weight: 1})
		return true
	})
	return out
}

// Validate checks the structural invariants a decoded or built map must
// hold before it is compiled into an Index: sorted unique scopes, origins
// and ASes, non-negative counts, confidences within (0, 1).
func (cm *ClientMap) Validate() error {
	for i, e := range cm.Scopes {
		if i > 0 && !prefixLess(cm.Scopes[i-1].Scope, e.Scope) {
			return fmt.Errorf("serve: scopes out of order at %d (%s)", i, e.Scope)
		}
		if e.Hits < 0 || e.Domains < 0 {
			return fmt.Errorf("serve: negative counts for scope %s", e.Scope)
		}
		if e.Confidence <= 0 || e.Confidence >= 1 {
			return fmt.Errorf("serve: confidence %v out of range for scope %s", e.Confidence, e.Scope)
		}
	}
	for i, o := range cm.Origins {
		if i > 0 && !prefixLess(cm.Origins[i-1].Prefix, o.Prefix) {
			return fmt.Errorf("serve: origins out of order at %d (%s)", i, o.Prefix)
		}
	}
	for i, a := range cm.ASes {
		if i > 0 && cm.ASes[i-1].ASN >= a.ASN {
			return fmt.Errorf("serve: ASes out of order at %d (AS%d)", i, a.ASN)
		}
		if a.Active24s < 0 || a.Announced24s < 0 {
			return fmt.Errorf("serve: negative /24 counts for AS%d", a.ASN)
		}
	}
	var prev netx.Slash24
	for i, b := range cm.Traffic {
		if i > 0 && b.Slash24 <= prev {
			return fmt.Errorf("serve: traffic bins out of order at %d", i)
		}
		if b.Weight < 0 {
			return fmt.Errorf("serve: negative traffic weight at %d", i)
		}
		prev = b.Slash24
	}
	return nil
}
