// Package gpdns simulates Google Public DNS as the cache-probing technique
// experiences it: a globally anycast recursive resolver with independent
// per-PoP cache pools, RFC 7871 ECS cache semantics, per-transport rate
// limits, and the property that non-recursive (RD=0) queries reveal cache
// contents without polluting them.
//
// Cache contents come from two sources that can be combined freely:
//
//   - event-driven: explicit RD=1 queries (from simulated clients or real
//     sockets) are forwarded to the authoritative and cached under the
//     returned scope — the path integration tests and live demos use; and
//   - lazy background fill: the world's client populations are modeled as
//     Poisson query processes, and "is this record cached at this PoP right
//     now?" is answered deterministically in O(1) at probe time, which is
//     what makes simulating a 120-hour whole-address-space campaign
//     tractable.
package gpdns

import (
	"sync"
	"time"

	"clientmap/internal/dnswire"
	"clientmap/internal/netx"
)

// entry is one cached RRset.
type entry struct {
	name   string
	addr   netx.Addr
	scope  netx.Prefix // cache key granularity; /0 for non-ECS domains
	expiry time.Time
}

// poolStripes is the shard count of unbounded pools. Sixteen mutexes keep
// concurrent probe workers for different domains off each other's locks;
// the per-shard maps stay small enough that the split costs nothing.
const poolStripes = 16

// pool is one independent cache within a PoP. Google operates several per
// site (§3.1.1 cites Trufflehunter), which is why the prober issues
// redundant queries.
//
// Internally the pool is striped by a hash of the queried name so that
// parallel probe workers — which hammer one pool from many goroutines —
// do not serialize on a single mutex. Capacity-bounded pools keep a single
// stripe: FIFO eviction is defined over the pool's global insertion order,
// and striping it would change which entries a full pool drops.
type pool struct {
	shards []poolShard
	// capacity bounds the number of live entries (0 = unbounded); when
	// full, the oldest insertion is evicted (FIFO, a fair approximation of
	// cache pressure for short-TTL records).
	capacity int
}

// poolShard is one independently locked slice of a pool's key space.
type poolShard struct {
	mu sync.Mutex
	// byName holds the cached entries for a name; ECS-aware domains can
	// have many entries under different scope prefixes.
	byName map[string][]entry
	size   int
	fifo   []fifoKey
}

type fifoKey struct {
	name  string
	scope netx.Prefix
}

func newPool(capacity int) *pool {
	n := poolStripes
	if capacity > 0 {
		n = 1
	}
	p := &pool{shards: make([]poolShard, n), capacity: capacity}
	for i := range p.shards {
		p.shards[i].byName = make(map[string][]entry)
	}
	return p
}

// shardFor picks the stripe for a name by FNV-1a.
func (p *pool) shardFor(name string) *poolShard {
	if len(p.shards) == 1 {
		return &p.shards[0]
	}
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &p.shards[h%uint32(len(p.shards))]
}

// lookup returns the live entry whose scope covers src, preferring the most
// specific cover. Scope-/0 entries cover everything.
func (p *pool) lookup(name string, src netx.Prefix, now time.Time) (entry, bool) {
	sh := p.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	entries := sh.byName[name]
	best := -1
	for i := range entries {
		e := &entries[i]
		if !e.expiry.After(now) {
			continue
		}
		if e.scope.ContainsPrefix(src) || src.ContainsPrefix(e.scope) {
			if best < 0 || e.scope.Bits() > entries[best].scope.Bits() {
				best = i
			}
		}
	}
	if best < 0 {
		return entry{}, false
	}
	return entries[best], true
}

// insert caches e, replacing an expired or same-scope entry for the name.
func (p *pool) insert(e entry, now time.Time) {
	sh := p.shardFor(e.name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	entries := sh.byName[e.name]
	// Drop expired entries opportunistically and replace same-scope ones.
	out := entries[:0]
	for _, old := range entries {
		if !old.expiry.After(now) || old.scope == e.scope {
			sh.size--
			continue
		}
		out = append(out, old)
	}
	sh.byName[e.name] = append(out, e)
	sh.size++
	// The FIFO is only consulted by capacity eviction; unbounded pools
	// skip it so steady-state inserts stay allocation-free.
	if p.capacity > 0 {
		sh.fifo = append(sh.fifo, fifoKey{name: e.name, scope: e.scope})
		for sh.size > p.capacity && len(sh.fifo) > 0 {
			sh.evictOldestLocked()
		}
	}
}

// evictOldestLocked removes the oldest FIFO key still cached.
func (sh *poolShard) evictOldestLocked() {
	for len(sh.fifo) > 0 {
		k := sh.fifo[0]
		sh.fifo = sh.fifo[1:]
		entries, ok := sh.byName[k.name]
		if !ok {
			continue
		}
		for i := range entries {
			if entries[i].scope == k.scope {
				sh.byName[k.name] = append(entries[:i], entries[i+1:]...)
				if len(sh.byName[k.name]) == 0 {
					delete(sh.byName, k.name)
				}
				sh.size--
				return
			}
		}
		// Key already replaced/expired out; keep scanning.
	}
}

// site is the cache state of one PoP.
type site struct {
	pools []*pool
}

func newSite(pools, capacity int) *site {
	s := &site{pools: make([]*pool, pools)}
	for i := range s.pools {
		s.pools[i] = newPool(capacity)
	}
	return s
}

// ttlRemaining converts an expiry into the TTL field of a response.
func ttlRemaining(expiry, now time.Time) uint32 {
	d := expiry.Sub(now)
	if d <= 0 {
		return 0
	}
	secs := uint32(d / time.Second)
	if secs == 0 {
		secs = 1
	}
	return secs
}

// answerFor builds the cache-hit response for query q in a pooled message;
// the consumer of the response releases it.
func answerFor(q *dnswire.Message, e entry, now time.Time) *dnswire.Message {
	r := q.ReplyInto(dnswire.AcquireMessage())
	r.RecursionAvailable = true
	r.Answers = append(r.Answers, dnswire.RR{
		Name:  e.name,
		Class: dnswire.ClassINET,
		TTL:   ttlRemaining(e.expiry, now),
		Data:  dnswire.A{Addr: e.addr},
	})
	if r.EDNS != nil && r.EDNS.ECS != nil {
		r.EDNS.ECS.ScopePrefixLen = uint8(e.scope.Bits())
	}
	return r
}

// missFor builds the cache-miss response: NOERROR, no answers, scope 0 —
// what a snooped resolver returns when it has nothing cached. The response
// is pooled; the consumer releases it.
func missFor(q *dnswire.Message) *dnswire.Message {
	r := q.ReplyInto(dnswire.AcquireMessage())
	r.RecursionAvailable = true
	if r.EDNS != nil && r.EDNS.ECS != nil {
		r.EDNS.ECS.ScopePrefixLen = 0
	}
	return r
}
