package gpdns

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"clientmap/internal/anycast"
	"clientmap/internal/clockx"
	"clientmap/internal/dnsnet"
	"clientmap/internal/dnswire"
	"clientmap/internal/metrics"
	"clientmap/internal/netx"
	"clientmap/internal/randx"
)

// MyAddrDomain is the diagnostic name whose TXT answer reveals which PoP a
// query reached, mirroring o-o.myaddr.l.google.com (§3.1.1).
const MyAddrDomain = "o-o.myaddr.l.google.com"

// Config configures the simulator.
type Config struct {
	Seed  randx.Seed
	Clock clockx.Clock
	// PoolsPerPoP is the number of independent cache pools at each site.
	PoolsPerPoP int
	// UDPPerDomainRate/Burst is the repeated-domain rate limit over UDP —
	// the low limit that forces the prober onto TCP.
	UDPPerDomainRate, UDPPerDomainBurst float64
	// TCPRate/Burst is the per-source limit over TCP (Google's documented
	// normal limit is 1,500 QPS).
	TCPRate, TCPBurst float64
	// PoolCapacity bounds each cache pool's entry count (0 = unbounded,
	// the default for simulations; production caches evict under load).
	PoolCapacity int
	// Metrics, when set, mirrors the server's counters into the shared
	// registry under "gpdns/…" — queries, cache hits, rate-limit drops,
	// bucket creations, and a token-occupancy histogram sampled on every
	// unscheduled (bucket-checked) arrival. Nil discards.
	Metrics *metrics.Registry
}

// DefaultConfig returns production-like settings.
func DefaultConfig(seed randx.Seed, clock clockx.Clock) Config {
	return Config{
		Seed:              seed,
		Clock:             clock,
		PoolsPerPoP:       3,
		UDPPerDomainRate:  1.0,
		UDPPerDomainBurst: 8,
		TCPRate:           1500,
		TCPBurst:          3000,
	}
}

// Server simulates the whole anycast service. It implements dnsnet.Handler
// (un-rate-limited); mount UDP() and TCP() to get transport-specific
// limiting.
type Server struct {
	cfg    Config
	router *anycast.Router

	sites []*site
	// upstream, when set, resolves RD=1 cache misses (the authoritative).
	upstream dnsnet.Handler
	// lazy, when set, supplies background client-driven cache contents.
	lazy *LazyFill

	// mu serializes route-table writes and the rate-limit maps; reads of
	// the routing state go through the atomic pointer below, so the
	// per-query hot path takes no lock at all.
	mu      sync.Mutex
	routes  atomic.Pointer[routeTable]
	udpLims map[udpLimKey]*dnsnet.TokenBucket
	tcpLims map[netx.Addr]*dnsnet.TokenBucket

	poolCtr atomic.Uint64
	// Stats counters.
	queries, hits, limited atomic.Uint64

	// Registry mirrors of the counters above, plus rate-limit occupancy.
	mQueries, mHits, mLimited, mBuckets *metrics.Counter
	mTokens                             *metrics.Histogram
}

// routeTable is the immutable routing state ServeDNS reads per query.
// Registration replaces the whole table under s.mu (copy-on-write);
// lookups load it atomically, so routing a query is lock-free.
type routeTable struct {
	vantages map[netx.Addr]int   // registered vantage source → PoP idx
	clients  func(netx.Addr) int // fallback source router (client addrs)
}

// udpLimKey identifies one UDP rate-limit bucket: Google's strict UDP
// limit is per (source, repeated domain). A struct key hashes directly —
// the old formatted-string key allocated on every unscheduled query and
// went through reflection in fmt.
type udpLimKey struct {
	from netx.Addr
	name string
}

// tokenBounds is the fixed bucket layout of the rate-limit occupancy
// histogram (token counts are small: UDP buckets burst at 8, TCP at a
// few thousand).
var tokenBounds = []int64{0, 1, 2, 4, 8, 16, 64, 256, 1024, 4096}

// NewServer builds the simulator over the router's PoP catalog.
func NewServer(cfg Config, router *anycast.Router) *Server {
	if cfg.Clock == nil {
		cfg.Clock = clockx.Real{}
	}
	if cfg.PoolsPerPoP <= 0 {
		cfg.PoolsPerPoP = 3
	}
	s := &Server{
		cfg:      cfg,
		router:   router,
		udpLims:  make(map[udpLimKey]*dnsnet.TokenBucket),
		tcpLims:  make(map[netx.Addr]*dnsnet.TokenBucket),
		mQueries: cfg.Metrics.Counter("gpdns/queries"),
		mHits:    cfg.Metrics.Counter("gpdns/cache_hits"),
		mLimited: cfg.Metrics.Counter("gpdns/ratelimit/limited"),
		mBuckets: cfg.Metrics.Counter("gpdns/ratelimit/buckets_created"),
		mTokens:  cfg.Metrics.Histogram("gpdns/ratelimit/tokens", tokenBounds),
	}
	s.routes.Store(&routeTable{vantages: make(map[netx.Addr]int)})
	for range router.PoPs() {
		s.sites = append(s.sites, newSite(cfg.PoolsPerPoP, cfg.PoolCapacity))
	}
	return s
}

// SetUpstream wires the authoritative handler used for RD=1 misses.
func (s *Server) SetUpstream(h dnsnet.Handler) { s.upstream = h }

// SetLazyFill attaches the background-traffic cache model.
func (s *Server) SetLazyFill(lf *LazyFill) { s.lazy = lf }

// LazyFill returns the attached background-traffic cache model, if any —
// the streaming mode invalidates its rate memo after each churn step.
func (s *Server) LazyFill() *LazyFill { return s.lazy }

// RegisterVantage declares that queries from src reach the PoP at catalog
// index popIdx (the result of the vantage's anycast route).
func (s *Server) RegisterVantage(src netx.Addr, popIdx int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.routes.Load()
	next := &routeTable{vantages: make(map[netx.Addr]int, len(old.vantages)+1), clients: old.clients}
	for k, v := range old.vantages {
		next.vantages[k] = v
	}
	next.vantages[src] = popIdx
	s.routes.Store(next)
}

// SetClientRouter supplies the PoP lookup for non-vantage sources (used by
// event-driven client simulations); return -1 for unroutable sources.
func (s *Server) SetClientRouter(f func(netx.Addr) int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.routes.Load()
	s.routes.Store(&routeTable{vantages: old.vantages, clients: f})
}

// Stats reports (queries served, cache hits, rate-limited drops).
func (s *Server) Stats() (queries, hits, limited uint64) {
	return s.queries.Load(), s.hits.Load(), s.limited.Load()
}

func (s *Server) route(from netx.Addr) int {
	rt := s.routes.Load()
	if popIdx, ok := rt.vantages[from]; ok {
		return popIdx
	}
	if rt.clients != nil {
		return rt.clients(from)
	}
	return -1
}

// ServeDNS implements dnsnet.Handler without transport rate limits.
func (s *Server) ServeDNS(ctx context.Context, from netx.Addr, q *dnswire.Message) *dnswire.Message {
	s.queries.Add(1)
	s.mQueries.Inc()
	popIdx := s.route(from)
	if popIdx < 0 || popIdx >= len(s.sites) {
		return nil // no anycast route from this source
	}
	qq := q.Question()

	if qq.Name == MyAddrDomain {
		r := q.ReplyInto(dnswire.AcquireMessage())
		r.RecursionAvailable = true
		r.Answers = append(r.Answers, dnswire.RR{
			Name:  qq.Name,
			Class: dnswire.ClassINET,
			TTL:   60,
			Data:  dnswire.TXT{Strings: []string{s.router.PoPs()[popIdx].Name}},
		})
		return r
	}
	if qq.Type != dnswire.TypeA {
		r := q.ReplyInto(dnswire.AcquireMessage())
		r.RecursionAvailable = true
		return r
	}

	// Effective ECS source: supplied by the client, else derived from the
	// client address at /24 — Google's default behaviour.
	src := netx.PrefixFrom(from, 24)
	if q.EDNS != nil && q.EDNS.ECS != nil {
		src = q.EDNS.ECS.SourcePrefix()
	}

	now := clockx.NowIn(ctx, s.cfg.Clock)
	st := s.sites[popIdx]
	// Pool selection. The front end sprays queries across a site's pools.
	// For scheduled queries (the parallel campaign attaches the probe's
	// timestamp to ctx) the pool must be a pure function of the query, or
	// the set of pools a redundancy burst covers would depend on how
	// concurrent workers interleave: hash the transaction id, which the
	// prober varies per attempt exactly so bursts spread over pools.
	// Unscheduled traffic (live mode, event-driven fills, tests) keeps the
	// round-robin counter, which models the same spray for callers that
	// arrive one at a time.
	var poolIdx int
	if _, scheduled := clockx.TimeFrom(ctx); scheduled {
		poolIdx = int(q.ID) % len(st.pools)
	} else {
		poolIdx = int(s.poolCtr.Add(1)) % len(st.pools)
	}
	p := st.pools[poolIdx]

	if e, ok := p.lookup(qq.Name, src, now); ok {
		s.hits.Add(1)
		s.mHits.Inc()
		return answerFor(q, e, now)
	}
	// Lazy background fill: would client-driven traffic have this cached?
	if s.lazy != nil {
		if e, ok := s.lazy.Lookup(popIdx, poolIdx, qq.Name, src, now); ok {
			s.hits.Add(1)
			s.mHits.Inc()
			return answerFor(q, e, now)
		}
	}

	if !q.RecursionDesired {
		// Cache snooping: a non-recursive miss never goes upstream (the
		// behaviour §3.1.1 verifies against a controlled authoritative).
		return missFor(q)
	}
	if s.upstream == nil {
		r := q.ReplyInto(dnswire.AcquireMessage())
		r.RCode = dnswire.RCodeServFail
		return r
	}

	// Recursive resolution: forward with ECS and cache under the returned
	// scope in this pool. The forward query and the upstream response are
	// both consumed here, so both go back to the message pool.
	fq := dnswire.AcquireMessage().SetQuery(q.ID, qq.Name, dnswire.TypeA).WithECS(src)
	resp := s.upstream.ServeDNS(ctx, 0, fq)
	dnswire.ReleaseMessage(fq)
	if resp == nil || resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
		r := q.ReplyInto(dnswire.AcquireMessage())
		r.RecursionAvailable = true
		if resp != nil {
			r.RCode = resp.RCode
			dnswire.ReleaseMessage(resp)
		} else {
			r.RCode = dnswire.RCodeServFail
		}
		return r
	}
	a, ok := resp.Answers[0].Data.(dnswire.A)
	if !ok {
		dnswire.ReleaseMessage(resp)
		r := q.ReplyInto(dnswire.AcquireMessage())
		r.RCode = dnswire.RCodeServFail
		return r
	}
	scope := netx.PrefixFrom(src.Addr(), 0)
	if resp.EDNS != nil && resp.EDNS.ECS != nil {
		scope = netx.PrefixFrom(src.Addr(), int(resp.EDNS.ECS.ScopePrefixLen))
	}
	e := entry{
		name:   qq.Name,
		addr:   a.Addr,
		scope:  scope,
		expiry: now.Add(time.Duration(resp.Answers[0].TTL) * time.Second),
	}
	dnswire.ReleaseMessage(resp)
	p.insert(e, now)
	return answerFor(q, e, now)
}

// UDP returns the handler with Google's UDP behaviour: a strict per
// (source, domain) limit that repeated probing trips quickly. Dropped
// queries time out (nil response).
func (s *Server) UDP() dnsnet.Handler {
	return dnsnet.HandlerFunc(func(ctx context.Context, from netx.Addr, q *dnswire.Message) *dnswire.Message {
		if _, scheduled := clockx.TimeFrom(ctx); scheduled {
			// Scheduled queries are paced by construction (the prober
			// spreads them across the pass window before issuing any), and
			// a token bucket consulted in worker order would admit a
			// different subset on every run. Rate conformance for the
			// campaign is enforced by the schedule, not re-checked here.
			return s.ServeDNS(ctx, from, q)
		}
		key := udpLimKey{from: from, name: q.Question().Name}
		s.mu.Lock()
		lim, ok := s.udpLims[key]
		if !ok {
			lim = dnsnet.NewTokenBucket(s.cfg.Clock, s.cfg.UDPPerDomainRate, s.cfg.UDPPerDomainBurst)
			s.udpLims[key] = lim
			s.mBuckets.Inc()
		}
		s.mu.Unlock()
		s.mTokens.Observe(int64(lim.Tokens()))
		if !lim.Allow() {
			s.limited.Add(1)
			s.mLimited.Inc()
			return nil
		}
		return s.ServeDNS(ctx, from, q)
	})
}

// TCP returns the handler with the per-source TCP limit (~1,500 QPS).
func (s *Server) TCP() dnsnet.Handler {
	return dnsnet.HandlerFunc(func(ctx context.Context, from netx.Addr, q *dnswire.Message) *dnswire.Message {
		if _, scheduled := clockx.TimeFrom(ctx); scheduled {
			// See UDP(): schedule-paced queries skip arrival-order buckets.
			return s.ServeDNS(ctx, from, q)
		}
		s.mu.Lock()
		lim, ok := s.tcpLims[from]
		if !ok {
			lim = dnsnet.NewTokenBucket(s.cfg.Clock, s.cfg.TCPRate, s.cfg.TCPBurst)
			s.tcpLims[from] = lim
			s.mBuckets.Inc()
		}
		s.mu.Unlock()
		s.mTokens.Observe(int64(lim.Tokens()))
		if !lim.Allow() {
			s.limited.Add(1)
			s.mLimited.Inc()
			return nil
		}
		return s.ServeDNS(ctx, from, q)
	})
}
