package gpdns

import (
	"context"
	"testing"
	"time"

	"clientmap/internal/clockx"
	"clientmap/internal/dnswire"
	"clientmap/internal/netx"
)

// TestPoolLookupAllocs gates the cache read path: a warm lookup costs
// nothing — the striped shards hand back the entry by value.
func TestPoolLookupAllocs(t *testing.T) {
	p := newPool(0)
	now := time.Unix(0, 0)
	e := entry{
		name:   "en.wikipedia.org",
		addr:   netx.MustParseAddr("198.51.100.7"),
		scope:  netx.MustParsePrefix("198.51.100.0/20"),
		expiry: now.Add(time.Hour),
	}
	p.insert(e, now)
	src := netx.MustParsePrefix("198.51.100.0/24")
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := p.lookup("en.wikipedia.org", src, now); !ok {
			t.Fatal("warm lookup missed")
		}
	})
	if allocs != 0 {
		t.Errorf("pool.lookup allocates %.1f per run, want 0", allocs)
	}
}

// TestPoolInsertAllocs gates the cache write path in steady state:
// replacing a same-scope entry for an interned name reuses the entry
// slice, and unbounded pools skip the eviction FIFO entirely.
func TestPoolInsertAllocs(t *testing.T) {
	p := newPool(0)
	now := time.Unix(0, 0)
	e := entry{
		name:   "en.wikipedia.org",
		addr:   netx.MustParseAddr("198.51.100.7"),
		scope:  netx.MustParsePrefix("198.51.100.0/20"),
		expiry: now.Add(time.Hour),
	}
	p.insert(e, now) // warm the map slot and slice capacity
	allocs := testing.AllocsPerRun(1000, func() {
		p.insert(e, now)
	})
	if allocs != 0 {
		t.Errorf("steady-state pool.insert allocates %.1f per run, want 0", allocs)
	}
}

// TestSnoopRoundTripAllocs gates one full probe iteration against the
// resolver simulator: build the RD=0 query in a pooled message, serve it
// from a warm cache, read the answer, release the response. One
// allocation is budgeted — boxing the cache entry's A record into the
// answer's RData interface.
func TestSnoopRoundTripAllocs(t *testing.T) {
	clock := clockx.NewSim(time.Unix(0, 0))
	srv, _, _ := testServer(t, clock)
	src := netx.MustParsePrefix("100.70.2.0/24")

	// A scheduled context makes pool selection a pure function of the
	// transaction id (as campaign probes are), so the fill and every
	// snoop below land on the same pool.
	ctx := clockx.WithTime(context.Background(), clock.Now())

	// Warm the cache with one recursive fill.
	fill := dnswire.NewQuery(7, "www.google.com", dnswire.TypeA).WithECS(src)
	if r := srv.ServeDNS(ctx, vantageAddr, fill); r == nil || len(r.Answers) == 0 {
		t.Fatal("recursive fill failed")
	}
	q := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(q)
	allocs := testing.AllocsPerRun(1000, func() {
		q.SetQuery(7, "www.google.com", dnswire.TypeA)
		q.RecursionDesired = false
		q.WithECS(src)
		resp := srv.ServeDNS(ctx, vantageAddr, q)
		if resp == nil {
			t.Fatal("snoop dropped")
		}
		hit := len(resp.Answers) > 0
		dnswire.ReleaseMessage(resp)
		if !hit {
			t.Fatal("warm snoop missed")
		}
	})
	if allocs > 1 {
		t.Errorf("snoop round trip allocates %.1f per run, want <= 1", allocs)
	}
}
