package gpdns

import (
	"fmt"
	"strconv"
	"testing"

	"clientmap/internal/netx"
)

// TestLazyKeyBytesMatchSprintf pins the lazy-fill sampler keys: the
// byte-built "gpdns/<name>/<natural>/<pop>/<pool>" and
// "gpdns/flip/..." keys must equal the fmt.Sprintf renderings they
// replaced, or every lazily filled cache line in the simulated resolver
// would move to a different arrival time and scope.
func TestLazyKeyBytesMatchSprintf(t *testing.T) {
	naturals := []netx.Prefix{
		netx.MustParsePrefix("10.0.0.0/20"),
		netx.MustParsePrefix("203.0.113.0/24"),
	}
	for _, name := range []string{"www.wikipedia.org", "cdn.fastly.net"} {
		for _, natural := range naturals {
			for _, pp := range [][2]int{{0, 0}, {3, 1}, {12, 7}} {
				popIdx, poolIdx := pp[0], pp[1]

				var kb [96]byte
				key := append(kb[:0], "gpdns/"...)
				key = append(key, name...)
				key = append(key, '/')
				key = natural.AppendTo(key)
				key = append(key, '/')
				key = strconv.AppendInt(key, int64(popIdx), 10)
				key = append(key, '/')
				key = strconv.AppendInt(key, int64(poolIdx), 10)
				want := fmt.Sprintf("gpdns/%s/%s/%d/%d", name, natural, popIdx, poolIdx)
				if string(key) != want {
					t.Errorf("fill key = %q, want %q", key, want)
				}

				const fill = int64(1609459200123456789)
				var fb [128]byte
				fkey := append(fb[:0], "gpdns/flip/"...)
				fkey = append(fkey, name...)
				fkey = append(fkey, '/')
				fkey = natural.AppendTo(fkey)
				fkey = append(fkey, '/')
				fkey = strconv.AppendInt(fkey, int64(popIdx), 10)
				fkey = append(fkey, '/')
				fkey = strconv.AppendInt(fkey, int64(poolIdx), 10)
				fkey = append(fkey, '/')
				fkey = strconv.AppendInt(fkey, fill, 10)
				fwant := fmt.Sprintf("gpdns/flip/%s/%s/%d/%d/%d", name, natural, popIdx, poolIdx, fill)
				if string(fkey) != fwant {
					t.Errorf("flip key = %q, want %q", fkey, fwant)
				}
				// Suffix draws truncate back to the base and append a tag.
				base := len(fkey)
				if got, want := string(append(fkey[:base], "/mag"...)), fwant+"/mag"; got != want {
					t.Errorf("suffix key = %q, want %q", got, want)
				}
			}
		}
	}
}
