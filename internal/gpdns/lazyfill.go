package gpdns

import (
	"strconv"
	"sync"
	"time"

	"clientmap/internal/authdns"
	"clientmap/internal/domains"
	"clientmap/internal/netx"
	"clientmap/internal/traffic"
)

// LazyFill answers "would client-driven traffic have (name, scope) cached
// at PoP p in pool i at time t?" without simulating individual queries.
//
// For each (domain, scope prefix) it aggregates the Google-bound query
// rates of the scope's client /24s per PoP (a /24's queries always reach
// the PoP anycast assigns it), splits the rate evenly across the PoP's
// cache pools, and asks the traffic model's deterministic Poisson sampler
// for the most recent arrival within the record's TTL.
type LazyFill struct {
	model   *traffic.Model
	catalog map[string]domains.Domain
	pools   int

	// mu is read-held on the probe path: every probe consults ratesFor,
	// and after warmup nearly all calls are hits on the memo map.
	mu    sync.RWMutex
	rates map[ratesKey]*scopeRates
}

// ratesKey identifies one (domain, scope) cache line. The struct key
// replaces a concatenated "domain|scope" string that was rebuilt — one
// allocation plus a prefix formatting — on every single probe.
type ratesKey struct {
	name  string
	scope netx.Prefix
}

// scopeRates caches the per-PoP aggregated rates for one (domain, scope).
type scopeRates struct {
	perPoP map[int]float64
	lon    float64
	// diurn is the rate-weighted mean diurnality of the scope's clients.
	diurn float64
}

// NewLazyFill builds the background-traffic model for the given per-PoP
// pool count (which must match the server's).
func NewLazyFill(model *traffic.Model, pools int) *LazyFill {
	cat := make(map[string]domains.Domain)
	for _, d := range domains.Catalog() {
		cat[d.Name] = d
	}
	return &LazyFill{
		model:   model,
		catalog: cat,
		pools:   pools,
		rates:   make(map[ratesKey]*scopeRates),
	}
}

// Invalidate drops every memoized (domain, scope) rate line. The memo
// assumes the world's prefix populations and resolver shares are frozen
// — true for fixed-window campaigns, false once the streaming mode
// churns the world. The stream calls Invalidate after applying each
// hour's churn events, so both a continuous run and a resumed run
// recompute rates from the same post-churn world instead of one of them
// serving stale memo entries.
func (lf *LazyFill) Invalidate() {
	lf.mu.Lock()
	lf.rates = make(map[ratesKey]*scopeRates)
	lf.mu.Unlock()
}

// ratesFor aggregates (and memoizes) the per-PoP client query rates for a
// (domain, scope) cache line.
func (lf *LazyFill) ratesFor(d domains.Domain, scope netx.Prefix) *scopeRates {
	key := ratesKey{name: d.Name, scope: scope}
	lf.mu.RLock()
	r, ok := lf.rates[key]
	lf.mu.RUnlock()
	if ok {
		return r
	}

	r = &scopeRates{perPoP: make(map[int]float64)}
	first := true
	var rateSum, diurnSum float64
	scope.Slash24s(func(p netx.Slash24) bool {
		pi, ok := lf.model.W.PrefixInfoOf(p)
		if !ok || !pi.HasClients() {
			return true
		}
		if first {
			r.lon = pi.Coord.Lon
			first = false
		}
		rate := lf.model.GoogleDNSRate(pi, d)
		if rate <= 0 {
			return true
		}
		pop := lf.model.Router.PoPForClient(p, pi.Coord)
		r.perPoP[pop] += rate
		rateSum += rate
		diurnSum += rate * float64(pi.Diurnality)
		return true
	})
	if rateSum > 0 {
		r.diurn = diurnSum / rateSum
	} else {
		r.diurn = 1
	}

	lf.mu.Lock()
	if prev, ok := lf.rates[key]; ok {
		// Another worker computed the same line concurrently; keep one
		// instance so every caller shares the memo.
		r = prev
	} else {
		lf.rates[key] = r
	}
	lf.mu.Unlock()
	return r
}

// Lookup reports whether (name, a scope covering src) is cached at popIdx
// in the given pool at time now, and returns the synthetic entry if so.
//
// The cached entry's scope is the authoritative's *natural* scope for the
// block, occasionally flipped at fill time (authoritatives are not
// perfectly stable; appendix A.2 measures 90% exact agreement). Per RFC
// 7871 cache semantics a hit requires the cached scope to cover the query
// source, so a query at a stale or flipped scope can legitimately miss.
func (lf *LazyFill) Lookup(popIdx, poolIdx int, name string, src netx.Prefix, now time.Time) (entry, bool) {
	d, ok := lf.catalog[name]
	if !ok {
		return entry{}, false
	}
	if !d.SupportsECS {
		// Non-ECS domains have one global cache line per PoP; for a
		// popular domain it is effectively always warm, with scope 0.
		exp := now.Add(d.TTL / 2)
		return entry{name: name, addr: lazyAddr(name), scope: netx.PrefixFrom(0, 0), expiry: exp}, true
	}
	natural := authdns.NaturalScope(lf.model.W.Cfg.Seed, d, src)
	rates := lf.ratesFor(d, natural)
	rate, ok := rates.perPoP[popIdx]
	if !ok || rate <= 0 {
		return entry{}, false
	}
	// Sampler key "gpdns/<name>/<natural>/<pop>/<pool>", byte-built in
	// stack scratch — these bytes must equal the fmt.Sprintf("%s/%s/%d/%d")
	// key this line used before the zero-alloc rewrite, or every lazily
	// filled cache line would move (pinned by TestLazyKeyBytesMatchSprintf).
	var kb [96]byte
	key := append(kb[:0], "gpdns/"...)
	key = append(key, d.Name...)
	key = append(key, '/')
	key = natural.AppendTo(key)
	key = append(key, '/')
	key = strconv.AppendInt(key, int64(popIdx), 10)
	key = append(key, '/')
	key = strconv.AppendInt(key, int64(poolIdx), 10)
	arrival, ok := lf.model.LastEventBeforeDB(key, rate/float64(lf.pools), rates.lon, rates.diurn, now, d.TTL)
	if !ok {
		return entry{}, false
	}
	scope := lf.cachedScope(d, natural, popIdx, poolIdx, arrival)
	// A cached scope more specific than the query source does not cover
	// the source: cache miss (the prober will have probed the sibling
	// scopes separately).
	if scope.Bits() > src.Bits() {
		return entry{}, false
	}
	return entry{
		name:   name,
		addr:   lazyAddr(name),
		scope:  scope,
		expiry: arrival.Add(d.TTL),
	}, true
}

// cachedScope applies fill-time scope instability: mostly the natural
// scope, occasionally shifted a few bits — deterministic per cache fill.
func (lf *LazyFill) cachedScope(d domains.Domain, natural netx.Prefix, popIdx, poolIdx int, arrival time.Time) netx.Prefix {
	seed := lf.model.W.Cfg.Seed
	fill := arrival.UnixNano()
	// Byte-identical to the former fmt.Sprintf("gpdns/flip/%s/%s/%d/%d/%d")
	// key; suffix draws reuse the buffer by truncating back to the base.
	var kb [128]byte
	key := append(kb[:0], "gpdns/flip/"...)
	key = append(key, d.Name...)
	key = append(key, '/')
	key = natural.AppendTo(key)
	key = append(key, '/')
	key = strconv.AppendInt(key, int64(popIdx), 10)
	key = append(key, '/')
	key = strconv.AppendInt(key, int64(poolIdx), 10)
	key = append(key, '/')
	key = strconv.AppendInt(key, fill, 10)
	base := len(key)
	u := seed.HashUnitB(key)
	if u >= d.Scope.FlipProb {
		return natural
	}
	// Magnitude distribution mirrors authdns: mostly ±1-2 bits.
	v := seed.HashUnitB(append(key[:base], "/mag"...))
	var delta int
	switch {
	case v < 0.5:
		delta = 1
	case v < 0.8:
		delta = 2
	case v < 0.93:
		delta = 3 + int(seed.Hash64B(append(key[:base], "/m2"...))%2)
	default:
		delta = 5 + int(seed.Hash64B(append(key[:base], "/m3"...))%4)
	}
	if seed.HashUnitB(append(key[:base], "/sign"...)) < 0.5 {
		delta = -delta
	}
	bits := natural.Bits() + delta
	if bits > 24 {
		bits = 24
	}
	if bits < d.Scope.MinBits-4 {
		bits = d.Scope.MinBits - 4
	}
	if bits < 16 {
		bits = 16 // see authdns: never coarser than /16
	}
	return netx.PrefixFrom(natural.Addr(), bits)
}

// lazyAddr is the synthetic answer address for lazily filled entries; it
// only needs to be stable per name.
func lazyAddr(name string) netx.Addr {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return netx.AddrFrom4(198, 18, byte(h>>8), byte(h))
}
