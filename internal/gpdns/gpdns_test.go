package gpdns

import (
	"context"
	"testing"
	"time"

	"clientmap/internal/anycast"
	"clientmap/internal/authdns"
	"clientmap/internal/clockx"
	"clientmap/internal/dnswire"
	"clientmap/internal/domains"
	"clientmap/internal/netx"
	"clientmap/internal/traffic"
	"clientmap/internal/world"
)

const vantageAddr = netx.Addr(0x64400001) // 100.64.0.1

func testServer(t testing.TB, clock clockx.Clock) (*Server, *authdns.Server, *anycast.Router) {
	t.Helper()
	router := anycast.NewRouter(21, anycast.Catalog())
	srv := NewServer(DefaultConfig(21, clock), router)
	auth := authdns.New(21, domains.Catalog())
	srv.SetUpstream(auth)
	srv.RegisterVantage(vantageAddr, 0) // PoP 0 = dls
	return srv, auth, router
}

func snoop(name string, src netx.Prefix, id uint16) *dnswire.Message {
	q := dnswire.NewQuery(id, name, dnswire.TypeA).WithECS(src)
	q.RecursionDesired = false
	return q
}

func TestMyAddrRevealsPoP(t *testing.T) {
	srv, _, router := testServer(t, clockx.NewSim(time.Time{}))
	q := dnswire.NewQuery(1, MyAddrDomain, dnswire.TypeTXT)
	r := srv.ServeDNS(context.Background(), vantageAddr, q)
	if r == nil || len(r.Answers) != 1 {
		t.Fatalf("no answer: %+v", r)
	}
	txt, ok := r.Answers[0].Data.(dnswire.TXT)
	if !ok || len(txt.Strings) != 1 || txt.Strings[0] != router.PoPs()[0].Name {
		t.Errorf("TXT = %+v, want PoP name %q", r.Answers[0].Data, router.PoPs()[0].Name)
	}
}

func TestUnroutedSourceDropped(t *testing.T) {
	srv, _, _ := testServer(t, clockx.NewSim(time.Time{}))
	q := dnswire.NewQuery(1, "www.google.com", dnswire.TypeA)
	if r := srv.ServeDNS(context.Background(), netx.MustParseAddr("203.0.113.1"), q); r != nil {
		t.Error("query from unrouted source was answered")
	}
}

func TestRecursiveFillThenSnoop(t *testing.T) {
	clock := clockx.NewSim(time.Time{})
	srv, _, _ := testServer(t, clock)
	src := netx.MustParsePrefix("100.70.2.0/24")

	// Snoop before any fill: miss in every pool.
	for i := 0; i < 4; i++ {
		r := srv.ServeDNS(context.Background(), vantageAddr, snoop("www.google.com", src, uint16(i)))
		if r == nil || len(r.Answers) != 0 {
			t.Fatalf("cold snoop returned answers: %+v", r)
		}
		if r.EDNS.ECS.ScopePrefixLen != 0 {
			t.Fatalf("cold snoop scope = %d", r.EDNS.ECS.ScopePrefixLen)
		}
	}

	// Recursive query fills exactly one pool.
	rq := dnswire.NewQuery(9, "www.google.com", dnswire.TypeA).WithECS(src)
	r := srv.ServeDNS(context.Background(), vantageAddr, rq)
	if r == nil || len(r.Answers) != 1 {
		t.Fatalf("recursive query failed: %+v", r)
	}
	scope := r.EDNS.ECS.ScopePrefixLen
	if scope == 0 {
		t.Fatal("recursive response has zero scope for ECS domain")
	}

	// Redundant snooping (one per pool) finds the entry; the scope echoes
	// the cached one.
	hits := 0
	for i := 0; i < DefaultConfig(0, nil).PoolsPerPoP; i++ {
		r := srv.ServeDNS(context.Background(), vantageAddr, snoop("www.google.com", src, uint16(20+i)))
		if r != nil && len(r.Answers) == 1 {
			hits++
			if r.EDNS.ECS.ScopePrefixLen != scope {
				t.Errorf("snoop scope %d, cached %d", r.EDNS.ECS.ScopePrefixLen, scope)
			}
			if !r.RecursionAvailable {
				t.Error("RA bit not set")
			}
		}
	}
	if hits != 1 {
		t.Errorf("entry found in %d pools, want exactly 1", hits)
	}
}

func TestSnoopDoesNotPolluteAndTTLExpires(t *testing.T) {
	clock := clockx.NewSim(time.Time{})
	srv, _, _ := testServer(t, clock)
	src := netx.MustParsePrefix("100.71.3.0/24")
	ctx := context.Background()

	// Fill.
	srv.ServeDNS(ctx, vantageAddr, dnswire.NewQuery(1, "www.youtube.com", dnswire.TypeA).WithECS(src))

	// Find the pool with the entry and note its TTL.
	var ttl0 uint32
	found := false
	for i := 0; i < 3; i++ {
		r := srv.ServeDNS(ctx, vantageAddr, snoop("www.youtube.com", src, uint16(10+i)))
		if len(r.Answers) == 1 {
			ttl0 = r.Answers[0].TTL
			found = true
		}
	}
	if !found {
		t.Fatal("fill not visible to snoop")
	}

	// TTL decrements on the simulated clock.
	clock.Advance(90 * time.Second)
	var ttl1 uint32
	for i := 0; i < 3; i++ {
		r := srv.ServeDNS(ctx, vantageAddr, snoop("www.youtube.com", src, uint16(20+i)))
		if len(r.Answers) == 1 {
			ttl1 = r.Answers[0].TTL
		}
	}
	if ttl1 == 0 || ttl1 >= ttl0 {
		t.Errorf("TTL did not decrement: %d -> %d", ttl0, ttl1)
	}

	// After expiry every pool misses, and snooping still does not refill.
	clock.Advance(10 * time.Minute)
	for i := 0; i < 6; i++ {
		r := srv.ServeDNS(ctx, vantageAddr, snoop("www.youtube.com", src, uint16(30+i)))
		if len(r.Answers) != 0 {
			t.Fatal("entry survived past TTL or snoop refilled cache")
		}
	}
}

func TestDefaultECSFromSource(t *testing.T) {
	clock := clockx.NewSim(time.Time{})
	srv, _, _ := testServer(t, clock)
	ctx := context.Background()
	// No ECS in query: Google derives /24 from the source address.
	q := dnswire.NewQuery(5, "www.google.com", dnswire.TypeA)
	r := srv.ServeDNS(ctx, vantageAddr, q)
	if r == nil || len(r.Answers) != 1 {
		t.Fatalf("recursive no-ECS query failed: %+v", r)
	}
	// The fill is cached under the source's /24 region: a snoop with that
	// /24 as ECS finds it.
	src := netx.PrefixFrom(vantageAddr, 24)
	hits := 0
	for i := 0; i < 3; i++ {
		r := srv.ServeDNS(ctx, vantageAddr, snoop("www.google.com", src, uint16(40+i)))
		if len(r.Answers) == 1 {
			hits++
		}
	}
	if hits == 0 {
		t.Error("entry cached under source /24 not found")
	}
}

func TestUDPRateLimitTripsTCPDoesNot(t *testing.T) {
	clock := clockx.NewSim(time.Time{})
	srv, _, _ := testServer(t, clock)
	ctx := context.Background()
	udp, tcp := srv.UDP(), srv.TCP()

	dropped := 0
	for i := 0; i < 50; i++ {
		q := snoop("www.google.com", netx.MustParsePrefix("100.72.0.0/24"), uint16(i))
		if udp.ServeDNS(ctx, vantageAddr, q) == nil {
			dropped++
		}
	}
	if dropped < 30 {
		t.Errorf("UDP repeated-domain probing dropped only %d/50", dropped)
	}

	for i := 0; i < 50; i++ {
		q := snoop("www.google.com", netx.MustParsePrefix("100.72.1.0/24"), uint16(i))
		if tcp.ServeDNS(ctx, vantageAddr, q) == nil {
			t.Fatalf("TCP probe %d dropped below 1500 QPS", i)
		}
	}
	_, _, limited := srv.Stats()
	if limited == 0 {
		t.Error("limited counter not incremented")
	}
}

func lazySetup(t testing.TB, seed int) (*Server, *traffic.Model, *anycast.Router) {
	t.Helper()
	w, err := world.Generate(world.Config{Seed: 31, Scale: world.ScaleTiny, Params: world.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	router := anycast.NewRouter(31, anycast.Catalog())
	model := traffic.NewModel(w, router, traffic.DefaultTunables())
	clock := clockx.NewSim(time.Time{})
	clock.Set(clockx.Epoch.Add(12 * time.Hour))
	srv := NewServer(DefaultConfig(31, clock), router)
	srv.SetLazyFill(NewLazyFill(model, DefaultConfig(31, clock).PoolsPerPoP))
	return srv, model, router
}

func TestLazyFillHitsBusyPrefixMissesEmptySpace(t *testing.T) {
	srv, model, router := lazySetup(t, 31)
	ctx := context.Background()

	// The prefix with the highest Google-bound query rate for the probed
	// domain is essentially always cached at its PoP.
	google, _ := domains.ByName("www.google.com")
	var busy *world.PrefixInfo
	var busyRate float64
	for i := range model.W.Prefixes {
		pi := &model.W.Prefixes[i]
		if rate := model.GoogleDNSRate(pi, google); rate > busyRate {
			busy, busyRate = pi, rate
		}
	}
	pop := router.PoPForClient(busy.P, busy.Coord)
	srv.RegisterVantage(vantageAddr, pop)

	hits := 0
	for i := 0; i < 6; i++ {
		r := srv.ServeDNS(ctx, vantageAddr, snoop("www.google.com", busy.P.Prefix(), uint16(i)))
		if r != nil && len(r.Answers) == 1 {
			hits++
			if r.EDNS.ECS.ScopePrefixLen == 0 {
				t.Error("lazy hit returned scope 0 for ECS domain")
			}
			if r.Answers[0].TTL == 0 {
				t.Error("lazy hit has zero TTL")
			}
		}
	}
	if hits == 0 {
		t.Errorf("busiest prefix (%.0f users, rate %.2e/s) never hit cache", busy.Users, busyRate)
	}

	// Unallocated space never hits.
	empty := netx.MustParsePrefix("9.9.9.0/24")
	if _, ok := model.W.PrefixInfoOf(empty.FirstSlash24()); ok {
		t.Fatal("test prefix unexpectedly allocated")
	}
	for i := 0; i < 6; i++ {
		r := srv.ServeDNS(ctx, vantageAddr, snoop("www.google.com", empty, uint16(50+i)))
		if r != nil && len(r.Answers) != 0 {
			t.Fatal("unallocated prefix produced a cache hit")
		}
	}
}

func TestLazyFillDeterministic(t *testing.T) {
	run := func() []int {
		srv, model, router := lazySetup(t, 31)
		ctx := context.Background()
		var out []int
		for i := 0; i < 40 && i < len(model.W.Prefixes); i++ {
			pi := &model.W.Prefixes[i*3%len(model.W.Prefixes)]
			pop := router.PoPForClient(pi.P, pi.Coord)
			srv.RegisterVantage(vantageAddr, pop)
			hits := 0
			for j := 0; j < 3; j++ {
				r := srv.ServeDNS(ctx, vantageAddr, snoop("www.google.com", pi.P.Prefix(), uint16(j)))
				if r != nil && len(r.Answers) == 1 {
					hits++
				}
			}
			out = append(out, hits)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lazy fill not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestLazyFillNonECSDomainScopeZero(t *testing.T) {
	srv, _, _ := lazySetup(t, 31)
	srv.RegisterVantage(vantageAddr, 0)
	r := srv.ServeDNS(context.Background(), vantageAddr, snoop("www.amazon.com", netx.MustParsePrefix("100.73.0.0/24"), 1))
	if r == nil || len(r.Answers) != 1 {
		t.Fatal("non-ECS popular domain should be warm")
	}
	if r.EDNS.ECS.ScopePrefixLen != 0 {
		t.Errorf("non-ECS domain scope = %d, want 0", r.EDNS.ECS.ScopePrefixLen)
	}
}

func TestNXDomainPassthrough(t *testing.T) {
	clock := clockx.NewSim(time.Time{})
	srv, _, _ := testServer(t, clock)
	q := dnswire.NewQuery(3, "no.such.zone.example", dnswire.TypeA)
	r := srv.ServeDNS(context.Background(), vantageAddr, q)
	if r == nil || r.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", r.RCode)
	}
}

func TestPoolCapacityEviction(t *testing.T) {
	clock := clockx.NewSim(time.Time{})
	router := anycast.NewRouter(55, anycast.Catalog())
	cfg := DefaultConfig(55, clock)
	cfg.PoolsPerPoP = 1 // single pool so every fill lands together
	cfg.PoolCapacity = 4
	srv := NewServer(cfg, router)
	srv.SetUpstream(authdns.New(55, domains.Catalog()))
	srv.RegisterVantage(vantageAddr, 0)
	ctx := context.Background()

	// Fill 8 distinct scopes (separate /16s so the authoritative cannot
	// coalesce them); capacity 4 keeps only the newest few.
	var scopes []netx.Prefix
	for i := 0; i < 8; i++ {
		src := netx.PrefixFrom(netx.AddrFrom4(100, byte(100+i), 0, 0), 24)
		scopes = append(scopes, src)
		q := dnswire.NewQuery(uint16(i+1), "www.google.com", dnswire.TypeA).WithECS(src)
		if r := srv.ServeDNS(ctx, vantageAddr, q); r == nil || len(r.Answers) == 0 {
			t.Fatalf("fill %d failed", i)
		}
	}
	hits := 0
	evicted := 0
	for i, src := range scopes {
		r := srv.ServeDNS(ctx, vantageAddr, snoop("www.google.com", src, uint16(50+i)))
		if r != nil && len(r.Answers) > 0 {
			hits++
		} else if i < 4 {
			evicted++
		}
	}
	// Some early fills must have been evicted; recent ones survive. The
	// authoritative may coarsen scopes so exact counts vary, but the cache
	// cannot hold all 8.
	if hits >= 8 {
		t.Errorf("all %d entries survived a capacity of 4", hits)
	}
	if evicted == 0 {
		t.Error("no early entry was evicted")
	}
}
