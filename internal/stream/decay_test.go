package stream

import (
	"math/rand"
	"testing"
)

// randSeries builds a random series with buckets in [0, maxHour].
func randSeries(rng *rand.Rand, maxHour int32) Series {
	var s Series
	n := rng.Intn(12)
	for i := 0; i < n; i++ {
		s.Add(rng.Int31n(maxHour+1), rng.Int31n(5)+1)
	}
	return s
}

func TestSeriesAddInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		s := randSeries(rng, 48)
		for i := 1; i < len(s.B); i++ {
			if s.B[i-1].Hour >= s.B[i].Hour {
				t.Fatalf("trial %d: buckets out of order: %v", trial, s.B)
			}
		}
		for _, b := range s.B {
			if b.Count <= 0 {
				t.Fatalf("trial %d: non-positive bucket: %v", trial, s.B)
			}
		}
	}
}

// Property 1: decay is prefix-monotone in sim time — decaying to t1 and
// then to t2 >= t1 is the same as decaying straight to t2. Evidence that
// aged out never comes back, and later decay never resurrects it.
func TestDecayPrefixMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const ttl = 6
	for trial := 0; trial < 500; trial++ {
		s := randSeries(rng, 48)
		t1 := rng.Int31n(49)
		t2 := t1 + rng.Int31n(24)
		step := s.Decay(t1, ttl).Decay(t2, ttl)
		direct := s.Decay(t2, ttl)
		if !step.Equal(direct) {
			t.Fatalf("trial %d: Decay(Decay(s,%d),%d) = %v, Decay(s,%d) = %v (s=%v)",
				trial, t1, t2, step.B, t2, direct.B, s.B)
		}
	}
}

// Property 2: decay distributes over fold at equal timestamps —
// Fold(Decay(a,t), Decay(b,t)) == Decay(Fold(a,b), t). Folding shard
// evidence and then decaying gives exactly what decaying each shard
// first would, which is why the fold order across workers cannot change
// the ledger. Mirrors the health.FoldWindows commutativity suite.
func TestDecayDistributesOverFold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const ttl = 6
	for trial := 0; trial < 500; trial++ {
		a := randSeries(rng, 48)
		b := randSeries(rng, 48)
		now := rng.Int31n(60)
		lhs := Fold(a.Decay(now, ttl), b.Decay(now, ttl))
		rhs := Fold(a, b).Decay(now, ttl)
		if !lhs.Equal(rhs) {
			t.Fatalf("trial %d: Fold∘Decay = %v, Decay∘Fold = %v (a=%v b=%v now=%d)",
				trial, lhs.B, rhs.B, a.B, b.B, now)
		}
	}
}

// Fold itself is commutative and associative (the distributivity test
// leans on this).
func TestFoldCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		a, b, c := randSeries(rng, 48), randSeries(rng, 48), randSeries(rng, 48)
		if !Fold(a, b).Equal(Fold(b, a)) {
			t.Fatalf("trial %d: fold not commutative", trial)
		}
		if !Fold(Fold(a, b), c).Equal(Fold(a, Fold(b, c))) {
			t.Fatalf("trial %d: fold not associative", trial)
		}
	}
}

// Property 3: a scope re-probed exactly at the decay threshold never
// oscillates. A hit at hour h keeps the scope live through hour h+ttl;
// if the refresh lands exactly at h+ttl — the same hour the old bucket
// drops — the scope stays live continuously: the ledger never reports a
// decay-out for it, and the map never flaps inactive for one hour.
func TestThresholdRefreshNeverOscillates(t *testing.T) {
	const ttl = 6
	for h0 := int32(0); h0 < 4; h0++ {
		var s Series
		s.Add(h0, 1)
		for step := int32(1); step <= 5; step++ {
			at := h0 + step*ttl // exactly at each successive threshold
			s.Add(at, 1)
			if out := s.decayInPlace(at, ttl); out {
				t.Fatalf("refresh at threshold hour %d reported decay-out", at)
			}
			if !s.Live() {
				t.Fatalf("series dead after threshold refresh at hour %d", at)
			}
		}
	}

	// The ledger-level statement: AddHit at the threshold hour followed
	// by DecayTo of the same hour is neither "fresh" (no gap opened) nor
	// a decay-out (no flap recorded).
	l := NewLedger(ttl)
	scope := mustPrefix(t, 0x01020300, 24)
	if fresh := l.AddHit("a.example", scope, "fra", 0); !fresh {
		t.Fatal("first hit should be fresh")
	}
	l.DecayTo(0)
	for hour := int32(ttl); hour <= 4*ttl; hour += ttl {
		if fresh := l.AddHit("a.example", scope, "fra", hour); fresh {
			t.Fatalf("hour %d: threshold refresh reported fresh (scope flapped out)", hour)
		}
		if decayed := l.DecayTo(hour); decayed != 0 {
			t.Fatalf("hour %d: threshold refresh decayed %d scopes", hour, decayed)
		}
	}
	// One hour past the threshold without a refresh, the scope must
	// decay out — the boundary is exact, not fuzzy.
	if decayed := l.DecayTo(5*ttl + 1); decayed != 1 {
		t.Fatalf("expected exactly one decay-out past threshold, got %d", decayed)
	}
	if l.ActiveScopes() != 0 {
		t.Fatal("scope still active after aging past TTL")
	}
}

func TestMask(t *testing.T) {
	var s Series
	s.Add(10, 1)
	s.Add(12, 3)
	if m := s.Mask(12, 6); m != 0b101 {
		t.Fatalf("Mask(12,6) = %b, want 101", m)
	}
	if m := s.Mask(12, 2); m != 0b01 {
		t.Fatalf("Mask(12,2) = %b, want 1 (hour 10 outside window)", m)
	}
	if m := s.Mask(9, 6); m != 0 {
		t.Fatalf("Mask(9,6) = %b, want 0 (future buckets don't count)", m)
	}
}

func TestSeriesTotalLast(t *testing.T) {
	var s Series
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has a last bucket")
	}
	s.Add(3, 2)
	s.Add(1, 1)
	s.Add(3, 1)
	if got := s.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
	if h, ok := s.Last(); !ok || h != 3 {
		t.Fatalf("Last = %d,%v, want 3,true", h, ok)
	}
}
