package stream

import (
	"sort"

	"clientmap/internal/netx"
	"clientmap/internal/serve"
)

// Ledger is the stream's decaying evidence store: per (domain, response
// scope) hit series with per-PoP attribution, plus the DNS-logs channel's
// per-resolver-/24 observation series. All evidence is hour-bucketed
// Series values, decayed in place at the end of every hour, so the
// ledger's memory footprint is bounded by TTL × live scopes no matter
// how long the stream runs.
type Ledger struct {
	TTL int32

	// Domains maps domain → response scope → evidence.
	Domains map[string]map[netx.Prefix]*ScopeSeries
	// DNS maps a root-visible resolver's /24 to the hours it emitted
	// Chromium probes in.
	DNS map[netx.Slash24]*Series
}

// ScopeSeries is the decaying evidence for one (domain, scope).
type ScopeSeries struct {
	Hits Series
	// PoPs attributes hits to serving sites, mirroring the campaign
	// ledger's first-hit PoP attribution but with per-hour granularity.
	PoPs map[string]*Series
}

// NewLedger builds an empty ledger with the given evidence TTL.
func NewLedger(ttl int32) *Ledger {
	return &Ledger{
		TTL:     ttl,
		Domains: make(map[string]map[netx.Prefix]*ScopeSeries),
		DNS:     make(map[netx.Slash24]*Series),
	}
}

// AddHit folds one cache hit into the ledger. Reports whether the
// (domain, scope) had no live evidence before this hit — a scope
// entering the map.
func (l *Ledger) AddHit(domain string, scope netx.Prefix, pop string, hour int32) (fresh bool) {
	scopes := l.Domains[domain]
	if scopes == nil {
		scopes = make(map[netx.Prefix]*ScopeSeries)
		l.Domains[domain] = scopes
	}
	ss := scopes[scope]
	if ss == nil {
		ss = &ScopeSeries{PoPs: make(map[string]*Series)}
		scopes[scope] = ss
	}
	fresh = !ss.Hits.Live()
	ss.Hits.Add(hour, 1)
	ps := ss.PoPs[pop]
	if ps == nil {
		ps = &Series{}
		ss.PoPs[pop] = ps
	}
	ps.Add(hour, 1)
	return fresh
}

// AddDNS records that the resolver /24 emitted root-visible Chromium
// probes during the hour.
func (l *Ledger) AddDNS(p netx.Slash24, hour int32) {
	s := l.DNS[p]
	if s == nil {
		s = &Series{}
		l.DNS[p] = s
	}
	s.Add(hour, 1)
}

// DecayTo drops evidence older than the TTL as of the given hour and
// removes emptied entries. It returns how many (domain, scope) entries
// decayed out this step — scopes whose confidence aged to nothing and
// whose probe tasks therefore fall back into the scheduler's candidate
// pool.
func (l *Ledger) DecayTo(hour int32) (decayedScopes int) {
	for domain, scopes := range l.Domains {
		for scope, ss := range scopes {
			if ss.Hits.decayInPlace(hour, l.TTL) {
				decayedScopes++
			}
			for pop, ps := range ss.PoPs {
				ps.decayInPlace(hour, l.TTL)
				if !ps.Live() {
					delete(ss.PoPs, pop)
				}
			}
			if !ss.Hits.Live() {
				delete(scopes, scope)
			}
		}
		if len(scopes) == 0 {
			delete(l.Domains, domain)
		}
	}
	for p, s := range l.DNS {
		s.decayInPlace(hour, l.TTL)
		if !s.Live() {
			delete(l.DNS, p)
		}
	}
	return decayedScopes
}

// ActiveScopes counts distinct response scopes with live evidence in any
// domain.
func (l *Ledger) ActiveScopes() int {
	seen := make(map[netx.Prefix]struct{})
	for _, scopes := range l.Domains {
		for scope := range scopes {
			seen[scope] = struct{}{}
		}
	}
	return len(seen)
}

// DNSActive counts resolver /24s with live DNS-logs evidence.
func (l *Ledger) DNSActive() int { return len(l.DNS) }

// PoPLive reports whether any live evidence is attributed to the PoP.
func (l *Ledger) PoPLive(pop string) bool {
	for _, scopes := range l.Domains {
		for _, ss := range scopes {
			if ps, ok := ss.PoPs[pop]; ok && ps.Live() {
				return true
			}
		}
	}
	return false
}

// PoPLastHit returns the most recent evidence hour attributed to the
// PoP across all live scopes, and whether any exists.
func (l *Ledger) PoPLastHit(pop string) (lastHit int32, live bool) {
	lastHit = -1
	for _, scopes := range l.Domains {
		for _, ss := range scopes {
			ps, ok := ss.PoPs[pop]
			if !ok {
				continue
			}
			if h, ok := ps.Last(); ok {
				live = true
				if h > lastHit {
					lastHit = h
				}
			}
		}
	}
	return lastHit, live
}

// CoveredLive reports whether any live scope covers the address — the
// rolling map would answer "active" for it. lastHit returns the most
// recent evidence hour over the covering scopes.
func (l *Ledger) CoveredLive(a netx.Addr) (lastHit int32, covered bool) {
	lastHit = -1
	for _, scopes := range l.Domains {
		for scope, ss := range scopes {
			if !scope.Contains(a) {
				continue
			}
			if h, ok := ss.Hits.Last(); ok {
				covered = true
				if h > lastHit {
					lastHit = h
				}
			}
		}
	}
	return lastHit, covered
}

// ServeScopes folds the live evidence into serve.ScopeEvidence rows as
// of the given hour: scopes merge across domains, the confidence window
// is the TTL (hour buckets in place of passes), and every slice comes
// out in the sorted order serve.Validate demands. The fold visits maps
// in sorted key order, so the same ledger always produces the same rows.
func (l *Ledger) ServeScopes(hour int32) []serve.ScopeEvidence {
	type agg struct {
		hits    int
		mask    uint64
		domains int
		pops    map[string]int
	}
	merged := make(map[netx.Prefix]*agg)

	domains := make([]string, 0, len(l.Domains))
	for d := range l.Domains {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		scopes := l.Domains[d]
		keys := make([]netx.Prefix, 0, len(scopes))
		for p := range scopes {
			keys = append(keys, p)
		}
		sort.Slice(keys, func(i, j int) bool { return prefixLess(keys[i], keys[j]) })
		for _, p := range keys {
			ss := scopes[p]
			a := merged[p]
			if a == nil {
				a = &agg{pops: make(map[string]int)}
				merged[p] = a
			}
			a.hits += int(ss.Hits.Total())
			a.mask |= ss.Hits.Mask(hour, int(l.TTL))
			a.domains++
			pops := make([]string, 0, len(ss.PoPs))
			for pop := range ss.PoPs {
				pops = append(pops, pop)
			}
			sort.Strings(pops)
			for _, pop := range pops {
				a.pops[pop] += int(ss.PoPs[pop].Total())
			}
		}
	}

	out := make([]serve.ScopeEvidence, 0, len(merged))
	prefixes := make([]netx.Prefix, 0, len(merged))
	for p := range merged {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixLess(prefixes[i], prefixes[j]) })
	for _, p := range prefixes {
		a := merged[p]
		e := serve.ScopeEvidence{
			Scope:      p,
			Hits:       a.hits,
			PassMask:   a.mask,
			Domains:    a.domains,
			Confidence: serve.Confidence(a.mask, int(l.TTL)),
		}
		pops := make([]string, 0, len(a.pops))
		for pop := range a.pops {
			pops = append(pops, pop)
		}
		sort.Strings(pops)
		for _, pop := range pops {
			e.PoPs = append(e.PoPs, serve.PoPEvidence{PoP: pop, Hits: a.pops[pop]})
		}
		out = append(out, e)
	}
	return out
}

// prefixLess orders prefixes by (address, length) — serve's canonical
// scope order.
func prefixLess(a, b netx.Prefix) bool {
	if a.Addr() != b.Addr() {
		return a.Addr() < b.Addr()
	}
	return a.Bits() < b.Bits()
}
