package stream

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"clientmap/internal/netx"
	"clientmap/internal/routeviews"
	"clientmap/internal/serve"
)

// ClientMapOut is one emitted rolling artifact: the map plus its
// deterministic payload hash. The hash is recorded in the hour view (so
// replayed runs must rebuild byte-identical maps) and the map itself is
// written to disk by the live path's exporter.
type ClientMapOut struct {
	Map  *serve.ClientMap
	Hash string
}

// buildMap assembles the rolling serving artifact from the ledger's live
// evidence as of the end of hour h. The origin table is re-derived from
// the live (churned) world each emit, so prefix re-allocations reach the
// served AS attribution as soon as their evidence does.
func (s *State) buildMap(env *Env, h int) *ClientMapOut {
	meta := serve.Meta{
		Seed:    uint64(s.Cfg.Seed),
		Scale:   s.Cfg.Scale,
		Passes:  s.Cfg.TTLHours,
		BuiltAt: env.HourStart(h + 1),
		Source: fmt.Sprintf("stream hour=%d ttl=%dh churn=%s",
			h, s.Cfg.TTLHours, s.Cfg.Churn.Fingerprint()),
	}
	scopes := s.Ledger.ServeScopes(int32(h))
	cm := serve.Assemble(meta, scopes, routeviews.FromWorld(env.World), nil)
	_, hash := serve.Marshal(cm)
	return &ClientMapOut{Map: cm, Hash: hash}
}

// FinalMap rebuilds the rolling artifact as of the last finished hour —
// how a resumed run reproduces the exact map an uninterrupted run
// emitted, without persisting the artifact itself.
func (s *State) FinalMap(env *Env) *ClientMapOut {
	if s.Hour == 0 {
		return nil
	}
	return s.buildMap(env, s.Hour-1)
}

// DNSTick runs one hour of the DNS-logs technique against the live
// world: for every root-visible resolver, a deterministic Poisson draw
// over its aggregate Chromium interception-probe rate decides whether
// the resolver's /24 appeared in this hour's root traces. The result
// depends only on (seed, resolver index, hour window, live world rates),
// so the Chromium-deprecation event silences the channel on the hour it
// fires. Returned /24s are sorted ascending.
func DNSTick(env *Env, cfg Config, h int) []netx.Slash24 {
	rates := env.Model.ResolverRootRates()
	start := env.HourStart(h)
	rng := cfg.Seed.New("stream/dns")
	var key []byte
	var out []netx.Slash24
	seen := make(map[netx.Slash24]bool)
	for ri, rate := range rates {
		if rate <= 0 {
			continue
		}
		r := &env.World.Resolvers[ri]
		key = key[:0]
		key = append(key, "stream/dns/"...)
		key = strconv.AppendInt(key, int64(ri), 10)
		if env.Model.CountInDR(rng, key, rate, r.Coord.Lon, 1, start, time.Hour) > 0 {
			p := r.Addr.Slash24()
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
