package stream

import (
	"bytes"
	"testing"

	"clientmap/internal/netx"
)

func mustPrefix(t *testing.T, addr uint32, bits int) netx.Prefix {
	t.Helper()
	return netx.PrefixFrom(netx.Addr(addr), bits)
}

func TestLedgerFreshAndDecay(t *testing.T) {
	l := NewLedger(3)
	s1 := mustPrefix(t, 0x0A000000, 24)
	s2 := mustPrefix(t, 0x0A000100, 24)

	if !l.AddHit("a.example", s1, "fra", 0) {
		t.Fatal("first hit not fresh")
	}
	// Freshness is per (domain, scope): the same scope under a second
	// domain is a new ledger entry.
	if !l.AddHit("b.example", s1, "lhr", 0) {
		t.Fatal("same scope under second domain not fresh")
	}
	if !l.AddHit("a.example", s2, "fra", 1) {
		t.Fatal("distinct scope not fresh")
	}
	if got := l.ActiveScopes(); got != 2 {
		t.Fatalf("ActiveScopes = %d, want 2", got)
	}
	if !l.PoPLive("fra") || !l.PoPLive("lhr") {
		t.Fatal("PoPs with evidence not live")
	}
	if l.PoPLive("gru") {
		t.Fatal("PoP without evidence live")
	}

	// Hour 3 with TTL 3: s1's hour-0 evidence ages out (both domain
	// entries), s2's hour-1 survives.
	if decayed := l.DecayTo(3); decayed != 2 {
		t.Fatalf("DecayTo(3) decayed %d scope entries, want 2 (s1 under both domains)", decayed)
	}
	if got := l.ActiveScopes(); got != 1 {
		t.Fatalf("ActiveScopes after decay = %d, want 1", got)
	}
	if l.PoPLive("lhr") {
		t.Fatal("lhr still live after its only evidence decayed")
	}
}

func TestLedgerFreshAfterDecayOut(t *testing.T) {
	// A scope that decays out and is later re-hit reports fresh again —
	// it re-enters the map as a new scope.
	l := NewLedger(2)
	s := mustPrefix(t, 0x0B000000, 24)
	if !l.AddHit("a.example", s, "fra", 0) {
		t.Fatal("first hit not fresh")
	}
	l.DecayTo(5)
	if !l.AddHit("a.example", s, "fra", 6) {
		t.Fatal("re-hit after decay-out not fresh")
	}
}

func TestLedgerDecayOutCountsPerDomainScope(t *testing.T) {
	l := NewLedger(2)
	s := mustPrefix(t, 0x0C000000, 24)
	l.AddHit("a.example", s, "fra", 0)
	l.AddHit("b.example", s, "fra", 0)
	// Both (domain, scope) entries decay in the same step.
	if decayed := l.DecayTo(3); decayed != 2 {
		t.Fatalf("decayed = %d, want 2 (one per domain entry)", decayed)
	}
}

func TestLedgerCoveredLive(t *testing.T) {
	l := NewLedger(6)
	scope := mustPrefix(t, 0x0A000000, 22) // covers 10.0.0.0 - 10.0.3.255
	l.AddHit("a.example", scope, "fra", 2)
	l.AddHit("a.example", scope, "fra", 5)

	last, covered := l.CoveredLive(netx.Addr(0x0A000280))
	if !covered || last != 5 {
		t.Fatalf("CoveredLive inside scope = %d,%v, want 5,true", last, covered)
	}
	if _, covered := l.CoveredLive(netx.Addr(0x0A000400)); covered {
		t.Fatal("address outside scope reported covered")
	}
}

func TestLedgerPoPLastHit(t *testing.T) {
	l := NewLedger(6)
	l.AddHit("a.example", mustPrefix(t, 0x0A000000, 24), "fra", 1)
	l.AddHit("b.example", mustPrefix(t, 0x0A000100, 24), "fra", 4)
	last, live := l.PoPLastHit("fra")
	if !live || last != 4 {
		t.Fatalf("PoPLastHit = %d,%v, want 4,true", last, live)
	}
	if _, live := l.PoPLastHit("gru"); live {
		t.Fatal("PoP without evidence reported live")
	}
}

func TestLedgerDNS(t *testing.T) {
	l := NewLedger(3)
	p := netx.Addr(0x08080800).Slash24()
	l.AddDNS(p, 0)
	if got := l.DNSActive(); got != 1 {
		t.Fatalf("DNSActive = %d, want 1", got)
	}
	l.DecayTo(4)
	if got := l.DNSActive(); got != 0 {
		t.Fatalf("DNSActive after decay = %d, want 0", got)
	}
}

func TestServeScopesDeterministicAndSorted(t *testing.T) {
	build := func() *Ledger {
		l := NewLedger(6)
		l.AddHit("b.example", mustPrefix(t, 0x0A000100, 24), "lhr", 1)
		l.AddHit("a.example", mustPrefix(t, 0x0A000000, 24), "fra", 0)
		l.AddHit("a.example", mustPrefix(t, 0x0A000100, 24), "gru", 2)
		l.AddHit("a.example", mustPrefix(t, 0x0A000000, 23), "fra", 2)
		l.AddDNS(netx.Addr(0x08080800).Slash24(), 1)
		return l
	}
	l := build()
	rows := l.ServeScopes(2)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if !prefixLess(rows[i-1].Scope, rows[i].Scope) {
			t.Fatalf("rows not sorted: %v before %v", rows[i-1].Scope, rows[i].Scope)
		}
	}
	// The merged scope at 10.0.1.0/24 saw two domains and two PoPs.
	var merged bool
	for _, r := range rows {
		if r.Scope == mustPrefix(t, 0x0A000100, 24) {
			merged = true
			if r.Domains != 2 || len(r.PoPs) != 2 || r.Hits != 2 {
				t.Fatalf("merged row = %+v, want 2 domains, 2 PoPs, 2 hits", r)
			}
		}
		if r.Confidence <= 0 || r.Confidence >= 1 {
			t.Fatalf("confidence %v outside (0,1)", r.Confidence)
		}
	}
	if !merged {
		t.Fatal("missing merged scope row")
	}

	// Identical ledgers marshal to identical bytes (map iteration order
	// cannot leak into the encoding).
	d1, h1 := build().MarshalLedger()
	d2, h2 := build().MarshalLedger()
	if !bytes.Equal(d1, d2) || h1 != h2 {
		t.Fatal("MarshalLedger not deterministic")
	}
}
