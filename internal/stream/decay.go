// Package stream is the continuous measurement mode: a campaign that
// never finishes. Evidence ages out on the sim clock (TTL-style decay
// over hour buckets), an adaptive scheduler re-probes prefixes on a
// priority ladder (recently-flipped > decaying-toward-threshold >
// never-observed > stable), and a rolling serve.ClientMap is assembled
// from whatever evidence is currently live, so the map tracks a churning
// world instead of summarizing a frozen one.
//
// The decay algebra is deliberately integral: a Series holds integer
// counts in integer hour buckets, decay drops whole buckets past the
// TTL, and folding is bucket-wise addition. All three properties the
// streaming test suite pins hold exactly (not just within float
// tolerance): decay is prefix-monotone in sim time, it distributes over
// fold at equal timestamps, and evidence refreshed exactly at the TTL
// threshold never oscillates — the dropped bucket and the refreshing
// bucket land in the same hour step.
package stream

// Bucket is one sim hour's evidence count.
type Bucket struct {
	Hour  int32
	Count int32
}

// Series is per-hour evidence, sorted by hour ascending with positive
// counts and at most one bucket per hour. The zero value is empty and
// ready to use.
type Series struct {
	B []Bucket
}

// Add folds n observations into the given hour. Out-of-order hours are
// handled (the streaming fold only ever appends, but the algebra tests
// exercise arbitrary order).
func (s *Series) Add(hour, n int32) {
	if n <= 0 {
		return
	}
	// Fast path: the stream appends in nondecreasing hour order.
	if k := len(s.B); k == 0 || s.B[k-1].Hour < hour {
		s.B = append(s.B, Bucket{Hour: hour, Count: n})
		return
	} else if s.B[k-1].Hour == hour {
		s.B[k-1].Count += n
		return
	}
	lo, hi := 0, len(s.B)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.B[mid].Hour < hour {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.B) && s.B[lo].Hour == hour {
		s.B[lo].Count += n
		return
	}
	s.B = append(s.B, Bucket{})
	copy(s.B[lo+1:], s.B[lo:])
	s.B[lo] = Bucket{Hour: hour, Count: n}
}

// Decay returns the series with every bucket at or before now-ttl
// dropped: evidence is live for exactly ttl hours after the hour it was
// observed in. Decay(Decay(s, t1), t2) == Decay(s, t2) for t2 >= t1
// (prefix monotonicity), and Decay distributes over Fold at equal now.
func (s Series) Decay(now, ttl int32) Series {
	cut := now - ttl
	lo := 0
	for lo < len(s.B) && s.B[lo].Hour <= cut {
		lo++
	}
	if lo == 0 {
		return Series{B: s.B}
	}
	return Series{B: s.B[lo:]}
}

// decayInPlace drops aged buckets without sharing the backing array, for
// the ledger's per-hour in-place maintenance. Reports whether the series
// went from live to empty.
func (s *Series) decayInPlace(now, ttl int32) (decayedOut bool) {
	cut := now - ttl
	lo := 0
	for lo < len(s.B) && s.B[lo].Hour <= cut {
		lo++
	}
	if lo == 0 {
		return false
	}
	live := len(s.B) > 0
	s.B = append(s.B[:0], s.B[lo:]...)
	return live && len(s.B) == 0
}

// Fold merges two series bucket-wise: counts at equal hours add. It is
// commutative and associative, and decay distributes over it:
// Fold(a.Decay(t, ttl), b.Decay(t, ttl)) == Fold(a, b).Decay(t, ttl).
func Fold(a, b Series) Series {
	if len(a.B) == 0 {
		return Series{B: append([]Bucket(nil), b.B...)}
	}
	if len(b.B) == 0 {
		return Series{B: append([]Bucket(nil), a.B...)}
	}
	out := make([]Bucket, 0, len(a.B)+len(b.B))
	i, j := 0, 0
	for i < len(a.B) && j < len(b.B) {
		switch {
		case a.B[i].Hour < b.B[j].Hour:
			out = append(out, a.B[i])
			i++
		case a.B[i].Hour > b.B[j].Hour:
			out = append(out, b.B[j])
			j++
		default:
			out = append(out, Bucket{Hour: a.B[i].Hour, Count: a.B[i].Count + b.B[j].Count})
			i, j = i+1, j+1
		}
	}
	out = append(out, a.B[i:]...)
	out = append(out, b.B[j:]...)
	return Series{B: out}
}

// Live reports whether any evidence is currently held (callers decay
// first; a decayed series is live iff it has buckets).
func (s Series) Live() bool { return len(s.B) > 0 }

// Total sums every bucket.
func (s Series) Total() int64 {
	var t int64
	for _, b := range s.B {
		t += int64(b.Count)
	}
	return t
}

// Last returns the most recent bucket hour, if any.
func (s Series) Last() (int32, bool) {
	if len(s.B) == 0 {
		return 0, false
	}
	return s.B[len(s.B)-1].Hour, true
}

// Mask returns the observed-hours bitmask over the window ending at now:
// bit k is set iff a bucket exists at hour now-k, for k < min(window,
// 64). It feeds serve.Confidence the way a fixed campaign's pass mask
// does, with "recent hour observed" in place of "pass observed".
func (s Series) Mask(now int32, window int) uint64 {
	if window > 64 {
		window = 64
	}
	var m uint64
	for i := len(s.B) - 1; i >= 0; i-- {
		k := now - s.B[i].Hour
		if k < 0 {
			continue
		}
		if int(k) >= window {
			break
		}
		m |= 1 << uint(k)
	}
	return m
}

// Equal reports bucket-exact equality.
func (s Series) Equal(o Series) bool {
	if len(s.B) != len(o.B) {
		return false
	}
	for i := range s.B {
		if s.B[i] != o.B[i] {
			return false
		}
	}
	return true
}
