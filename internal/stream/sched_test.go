package stream

import (
	"reflect"
	"testing"
)

func testConfig() Config {
	return Config{Seed: 42, Hours: 24}.WithDefaults()
}

func TestClassifyLadder(t *testing.T) {
	c := testConfig() // ttl 6, flip window 2, margin 2
	h := int32(10)
	cases := []struct {
		name string
		ts   TaskState
		want uint8
	}{
		{"never probed", TaskState{LastProbe: -1, LastHit: -1, FlipHour: -1}, classCold},
		{"recently flipped", TaskState{LastProbe: 9, LastHit: 9, FlipHour: 9, PrevHit: true}, classFlipped},
		{"flip aged out, stable", TaskState{LastProbe: 9, LastHit: 9, FlipHour: 7, PrevHit: true}, classStable},
		{"decaying toward threshold", TaskState{LastProbe: 6, LastHit: 6, FlipHour: -1, PrevHit: true}, classDecaying},
		{"decayed out (cold)", TaskState{LastProbe: 4, LastHit: 4, FlipHour: -1, PrevHit: true}, classCold},
		{"probed, never hit", TaskState{LastProbe: 9, LastHit: -1, FlipHour: -1}, classCold},
		{"fresh hit, stable", TaskState{LastProbe: 9, LastHit: 9, FlipHour: -1, PrevHit: true}, classStable},
	}
	for _, tc := range cases {
		if got := c.classify(tc.ts, h); got != tc.want {
			t.Errorf("%s: class = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// flipOverridesDecay: a flip within the window outranks everything, even
// when the task is also decaying.
func TestClassifyFlipOutranksDecay(t *testing.T) {
	c := testConfig()
	ts := TaskState{LastProbe: 9, LastHit: 5, FlipHour: 9, PrevHit: false}
	if got := c.classify(ts, 10); got != classFlipped {
		t.Fatalf("class = %d, want flipped", got)
	}
}

func newTestState(pops []string, tasksPer int) *State {
	s := &State{Cfg: testConfig(), Withdrawn: make(map[string]bool), PoPs: pops}
	s.Tasks = make([][]TaskState, len(pops))
	for i := range s.Tasks {
		ts := make([]TaskState, tasksPer)
		for j := range ts {
			ts[j] = TaskState{LastProbe: -1, LastHit: -1, FlipHour: -1}
		}
		s.Tasks[i] = ts
	}
	return s
}

func TestScheduleBudgetAndOrder(t *testing.T) {
	s := newTestState([]string{"fra", "lhr"}, 100)
	sel, n := s.schedule(0)
	want := int(DefaultBudgetFrac * 100)
	if n != 2*want {
		t.Fatalf("scheduled %d tasks, want %d", n, 2*want)
	}
	for pi, tis := range sel {
		if len(tis) != want {
			t.Fatalf("pop %d: %d tasks, want %d", pi, len(tis), want)
		}
		for i := 1; i < len(tis); i++ {
			if tis[i-1] >= tis[i] {
				t.Fatalf("pop %d: selection not sorted ascending: %v", pi, tis)
			}
		}
	}
	// Pure function of state: same inputs, same selection.
	sel2, _ := s.schedule(0)
	if !reflect.DeepEqual(sel, sel2) {
		t.Fatal("schedule not deterministic")
	}
	// Different hours rotate the cold pool.
	sel3, _ := s.schedule(1)
	if reflect.DeepEqual(sel, sel3) {
		t.Fatal("rotation hash did not vary selection across hours")
	}
}

func TestScheduleMinimumBudget(t *testing.T) {
	s := newTestState([]string{"fra"}, 2) // 0.35*2 < 1 → floor at 1
	_, n := s.schedule(0)
	if n != 1 {
		t.Fatalf("scheduled %d, want minimum budget 1", n)
	}
}

func TestScheduleWithdrawnPoPGetsNothing(t *testing.T) {
	s := newTestState([]string{"fra", "lhr"}, 10)
	s.Withdrawn["fra"] = true
	sel, _ := s.schedule(0)
	if len(sel[0]) != 0 {
		t.Fatalf("withdrawn PoP scheduled %d tasks", len(sel[0]))
	}
	if len(sel[1]) == 0 {
		t.Fatal("live PoP scheduled nothing")
	}
}

// Priority classes actually shape the selection: with a tight budget,
// a decaying task beats stable tasks, and a flipped task beats both.
func TestSchedulePriorityWins(t *testing.T) {
	s := newTestState([]string{"fra"}, 20)
	h := int32(10)
	for i := range s.Tasks[0] {
		// Everyone stable: probed and hit recently.
		s.Tasks[0][i] = TaskState{LastProbe: 9, LastHit: 9, FlipHour: -1, PrevHit: true}
	}
	s.Tasks[0][7] = TaskState{LastProbe: 6, LastHit: 6, FlipHour: -1, PrevHit: true} // decaying
	s.Tasks[0][3] = TaskState{LastProbe: 9, LastHit: 9, FlipHour: 9, PrevHit: true}  // flipped
	s.Cfg.BudgetFrac = 0.1 // budget = 2
	sel, _ := s.schedule(h)
	if !reflect.DeepEqual(sel[0], []int{3, 7}) {
		t.Fatalf("selection = %v, want the flipped task 3 and decaying task 7", sel[0])
	}
}

// The rotation must eventually reach every cold task — no starvation.
func TestScheduleRotationCoversAll(t *testing.T) {
	s := newTestState([]string{"fra"}, 40)
	seen := make(map[int]bool)
	for h := int32(0); h < 30; h++ {
		sel, _ := s.schedule(h)
		for _, ti := range sel[0] {
			seen[ti] = true
		}
	}
	if len(seen) != 40 {
		t.Fatalf("rotation reached %d/40 cold tasks in 30 hours", len(seen))
	}
}
