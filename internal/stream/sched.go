package stream

import (
	"sort"
	"strconv"
)

// TaskState is the scheduler's per-probe-task memory: when the task was
// last probed, when it last hit, and when its outcome last flipped. All
// hours are -1 before the first observation.
type TaskState struct {
	LastProbe int32
	LastHit   int32
	FlipHour  int32
	PrevHit   bool
}

// Priority ladder classes, in selection order. The ladder spends the
// hourly probe budget where a probe is informative: a task whose outcome
// just changed is probed again to confirm the flip, a task whose
// evidence is about to age out is refreshed before the map loses it, a
// task with no live evidence (never observed, or decayed back into the
// candidate pool) is explored, and a stable task — recently confirmed,
// nowhere near its TTL — is rotated through last.
const (
	classFlipped uint8 = iota
	classDecaying
	classCold
	classStable
)

// classify places one task on the ladder at hour h.
func (c Config) classify(ts TaskState, h int32) uint8 {
	if ts.LastProbe < 0 {
		return classCold // never probed
	}
	if ts.FlipHour >= 0 && h-ts.FlipHour <= int32(c.FlipWindow) {
		return classFlipped
	}
	cold := ts.LastHit < 0 || ts.LastHit <= h-int32(c.TTLHours)
	if cold {
		return classCold
	}
	if ts.LastHit <= h-int32(c.TTLHours-c.DecayMargin) {
		return classDecaying
	}
	return classStable
}

// schedule selects this hour's probe tasks: per non-withdrawn PoP, up to
// budget tasks in ladder order, rotated within each class by a
// seed-keyed hash of (hour, PoP, task) so the stable and cold pools
// cycle instead of starving their tails. The selection is a pure
// function of the pre-hour task states and the withdrawn set, which is
// how a resumed stream recomputes exactly the selection the original
// stream probed. Returned index lists are sorted ascending — the order
// Subset preserves and the probe engine's determinism keys on.
func (s *State) schedule(h int32) (sel [][]int, scheduled int) {
	sel = make([][]int, len(s.Tasks))
	type cand struct {
		class uint8
		rot   uint64
		ti    int
	}
	var key []byte
	for pi := range s.Tasks {
		pop := s.PoPs[pi]
		if s.Withdrawn[pop] {
			continue
		}
		n := len(s.Tasks[pi])
		if n == 0 {
			continue
		}
		budget := int(s.Cfg.BudgetFrac * float64(n))
		if budget < 1 {
			budget = 1
		}
		if budget > n {
			budget = n
		}
		cands := make([]cand, n)
		for ti := range s.Tasks[pi] {
			key = key[:0]
			key = append(key, "stream/sched/"...)
			key = strconv.AppendInt(key, int64(h), 10)
			key = append(key, '/')
			key = append(key, pop...)
			key = append(key, '/')
			key = strconv.AppendInt(key, int64(ti), 10)
			cands[ti] = cand{
				class: s.Cfg.classify(s.Tasks[pi][ti], h),
				rot:   s.Cfg.Seed.Hash64B(key),
				ti:    ti,
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].class != cands[j].class {
				return cands[i].class < cands[j].class
			}
			if cands[i].rot != cands[j].rot {
				return cands[i].rot < cands[j].rot
			}
			return cands[i].ti < cands[j].ti
		})
		picked := make([]int, 0, budget)
		for _, c := range cands[:budget] {
			picked = append(picked, c.ti)
		}
		sort.Ints(picked)
		sel[pi] = picked
		scheduled += len(picked)
	}
	return sel, scheduled
}
