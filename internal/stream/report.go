package stream

import (
	"fmt"
	"strings"
)

// Report is the stream's end-of-run summary: headline rolling-view
// stats, the coverage-lag table (sim-hours between each world event and
// the first rolling map that reflects it), and the quantified coverage
// loss of the Chromium-deprecation scenario.
type Report struct {
	Hours    int
	TTLHours int
	Churn    string

	// Final rolling-view state.
	FinalScopes int
	FinalDNS    int
	Emits       int

	// Ambient (not lag-tracked) event counts.
	DriftTicks   int
	DiurnalTicks int

	// Outcomes is the coverage-lag table, in plan order.
	Outcomes []EventOutcome

	// Chromium-deprecation quantification: the DNS channel's live /24
	// count at the event hour vs stream end, and the percentage lost.
	ChromiumOffHour int
	ChromiumBase    int
	ChromiumEnd     int
	ChromiumLossPct float64
}

// Report summarizes the finished stream.
func (s *State) Report() *Report {
	r := &Report{
		Hours:           s.Cfg.Hours,
		TTLHours:        s.Cfg.TTLHours,
		Churn:           s.Cfg.Churn.String(),
		DriftTicks:      s.DriftTicks,
		DiurnalTicks:    s.DiurnalTicks,
		Outcomes:        s.Outcomes,
		ChromiumOffHour: s.ChromiumOffHour,
		ChromiumBase:    s.ChromiumBase,
	}
	if n := len(s.Views); n > 0 {
		last := s.Views[n-1]
		r.FinalScopes = last.ActiveScopes
		r.FinalDNS = last.DNSActive
		for _, v := range s.Views {
			if v.MapHash != "" {
				r.Emits++
			}
		}
	}
	if s.ChromiumOffHour >= 0 {
		r.ChromiumEnd = r.FinalDNS
		if r.ChromiumBase > 0 {
			r.ChromiumLossPct = 100 * float64(r.ChromiumBase-r.ChromiumEnd) / float64(r.ChromiumBase)
		}
	}
	return r
}

// Render formats the report as deterministic plain text (the determinism
// suite compares it byte-for-byte across worker counts and resumes).
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "streaming run: %d sim-hours, evidence TTL %dh, churn %s\n",
		r.Hours, r.TTLHours, r.Churn)
	fmt.Fprintf(&b, "final rolling view: %d active scopes, %d DNS /24s, %d artifact emits\n",
		r.FinalScopes, r.FinalDNS, r.Emits)
	fmt.Fprintf(&b, "ambient churn: %d drift ticks, %d diurnal ticks\n",
		r.DriftTicks, r.DiurnalTicks)
	if len(r.Outcomes) > 0 {
		b.WriteString("coverage lag (sim-hours from world event to map reflecting it):\n")
		b.WriteString("  hour  lag  event\n")
		for _, o := range r.Outcomes {
			lag := "pending"
			if o.ReflectedHour >= 0 {
				lag = fmt.Sprintf("%d", o.Lag())
			}
			fmt.Fprintf(&b, "  %4d  %3s  %s\n", o.Event.Hour, lag, o.Event.Describe())
		}
	}
	if r.ChromiumOffHour >= 0 {
		fmt.Fprintf(&b, "chromium deprecation at hour %d: DNS channel %d -> %d live /24s (%.1f%% coverage lost)\n",
			r.ChromiumOffHour, r.ChromiumBase, r.ChromiumEnd, r.ChromiumLossPct)
	}
	return b.String()
}
