package stream

import (
	"fmt"
	"time"

	"clientmap/internal/churn"
	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/netx"
	"clientmap/internal/randx"
	"clientmap/internal/traffic"
	"clientmap/internal/world"
)

// Config parameterizes a streaming run.
type Config struct {
	// Seed is the campaign seed (shared with world/scheduler/DNS keys).
	Seed randx.Seed
	// Scale names the world scale (metadata only at this layer).
	Scale string
	// Hours is the simulated stream length.
	Hours int
	// TTLHours is the evidence TTL: a hit keeps its scope live for this
	// many hours after the hour it landed in.
	TTLHours int
	// BudgetFrac is the fraction of each PoP's task list probed per hour.
	BudgetFrac float64
	// FlipWindow is how many hours a flipped task stays in the top
	// scheduler class.
	FlipWindow int
	// DecayMargin is how many hours before TTL expiry a live task enters
	// the decaying class.
	DecayMargin int
	// EmitEvery emits the rolling serving artifact every N hours.
	EmitEvery int
	// Churn drives the world's evolution while the stream runs.
	Churn churn.Config
}

// Default streaming parameters.
const (
	DefaultTTLHours    = 6
	DefaultBudgetFrac  = 0.35
	DefaultFlipWindow  = 2
	DefaultDecayMargin = 2
	DefaultEmitEvery   = 1
)

// WithDefaults fills unset tuning knobs.
func (c Config) WithDefaults() Config {
	if c.TTLHours <= 0 {
		c.TTLHours = DefaultTTLHours
	}
	if c.BudgetFrac <= 0 || c.BudgetFrac > 1 {
		c.BudgetFrac = DefaultBudgetFrac
	}
	if c.FlipWindow <= 0 {
		c.FlipWindow = DefaultFlipWindow
	}
	if c.DecayMargin <= 0 || c.DecayMargin >= c.TTLHours {
		c.DecayMargin = DefaultDecayMargin
	}
	if c.EmitEvery <= 0 {
		c.EmitEvery = DefaultEmitEvery
	}
	return c
}

// Fingerprint summarizes everything that changes the stream's outputs,
// for pipeline stage fingerprints.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("hours=%d ttl=%d budget=%g flip=%d margin=%d emit=%d churn=%s",
		c.Hours, c.TTLHours, c.BudgetFrac, c.FlipWindow, c.DecayMargin, c.EmitEvery,
		c.Churn.Fingerprint())
}

// Env is the in-memory simulation the stream drives. It is rebuilt from
// (seed, scale) on every run — live or resumed — and mutated identically
// hour by hour, which is what makes checkpoint replay exact.
type Env struct {
	World *world.World
	Model *traffic.Model
	Asg   *cacheprobe.Assignments
	// Epoch is the sim instant of hour 0.
	Epoch time.Time
	// InvalidateRates flushes memoized per-scope traffic rates after the
	// world churns (the Google DNS lazy-fill cache); nil when the serving
	// stack keeps no such cache.
	InvalidateRates func()
}

// HourStart returns the sim instant hour h begins at.
func (e *Env) HourStart(h int) time.Time { return e.Epoch.Add(time.Duration(h) * time.Hour) }

// HourPlan is the deterministic plan for one hour, computed by BeginHour
// before any probing: the churn events applied, and the scheduler's task
// selection as a subset assignment ready for the probe engine.
type HourPlan struct {
	Hour   int
	Start  time.Time
	Events []churn.Event
	// Sel holds, per PoP index, the sorted task indices selected for this
	// hour (empty for withdrawn PoPs).
	Sel       [][]int
	Scheduled int
	Sub       *cacheprobe.Assignments
}

// HourDelta is everything one hour observed — the checkpoint payload a
// resumed stream replays instead of re-probing.
type HourDelta struct {
	Hour int
	// Events are the churn events the hour applied; restore verifies them
	// against the re-derived plan.
	Events []churn.Event
	// Pass is the hour's probe delta (its Base field chains checkpoints).
	Pass *cacheprobe.PassDelta
	// DNS lists the resolver /24s the DNS-logs channel observed this
	// hour, sorted ascending.
	DNS []netx.Slash24
}

// HourView is the per-hour rolling summary the streaming report and the
// determinism suite pin byte-for-byte.
type HourView struct {
	Hour          int
	Events        int
	Scheduled     int
	Probes        int
	Hits          int
	FreshScopes   int
	DecayedScopes int
	ActiveScopes  int
	DNSActive     int
	Withdrawn     int
	// MapHash is the rolling artifact's payload hash on emit hours, ""
	// otherwise.
	MapHash string
}

// EventOutcome tracks one world event from application to the first hour
// the rolling map reflects it. The gap is the coverage lag the streaming
// report quantifies.
type EventOutcome struct {
	Event churn.Event
	// ReflectedHour is the first hour the map reflected the event, or -1
	// while still pending at stream end.
	ReflectedHour int
}

// Lag returns the coverage lag in sim hours, or -1 if never reflected.
func (o EventOutcome) Lag() int {
	if o.ReflectedHour < 0 {
		return -1
	}
	return o.ReflectedHour - o.Event.Hour
}

// tracked reports whether an event kind gets a coverage-lag row. Drift
// and diurnal events are ambient (they shift rates, not ground truth
// activity membership), so they are counted but not lag-tracked.
func tracked(k churn.Kind) bool {
	switch k {
	case churn.KindRealloc, churn.KindPoPWithdraw, churn.KindPoPAnnounce, churn.KindChromiumOff:
		return true
	}
	return false
}

// State is the stream's full scheduler + evidence state. It advances one
// hour at a time through BeginHour/FinishHour; both the live path and
// checkpoint replay drive it through exactly the same two calls, so a
// resumed stream's state is bit-identical to the uninterrupted one.
type State struct {
	Cfg  Config
	Plan []churn.Event
	// PoPs mirrors the assignment's PoP slots; Tasks holds scheduler
	// memory per (PoP, task).
	PoPs      []string
	Tasks     [][]TaskState
	Ledger    *Ledger
	Withdrawn map[string]bool
	Views     []HourView
	Outcomes  []EventOutcome

	// Hour is the next hour to begin.
	Hour int

	// DriftTicks / DiurnalTicks count ambient events applied.
	DriftTicks   int
	DiurnalTicks int

	// ChromiumOffHour is the hour the Chromium-deprecation event fired
	// (-1 before/without it); ChromiumBase is the live DNS-channel /24
	// count at the end of that hour — the baseline the coverage-loss
	// percentage is computed against.
	ChromiumOffHour int
	ChromiumBase    int
}

// NewState builds hour-0 state from a config, a churn plan, and the full
// campaign assignment.
func NewState(cfg Config, plan []churn.Event, asg *cacheprobe.Assignments) *State {
	cfg = cfg.WithDefaults()
	s := &State{
		Cfg:             cfg,
		Plan:            plan,
		Ledger:          NewLedger(int32(cfg.TTLHours)),
		Withdrawn:       make(map[string]bool),
		ChromiumOffHour: -1,
	}
	s.PoPs = make([]string, asg.NumPoPs())
	s.Tasks = make([][]TaskState, asg.NumPoPs())
	for pi := 0; pi < asg.NumPoPs(); pi++ {
		s.PoPs[pi] = asg.PoPName(pi)
		ts := make([]TaskState, asg.NumTasks(pi))
		for ti := range ts {
			ts[ti] = TaskState{LastProbe: -1, LastHit: -1, FlipHour: -1}
		}
		s.Tasks[pi] = ts
	}
	for _, ev := range plan {
		if tracked(ev.Kind) {
			s.Outcomes = append(s.Outcomes, EventOutcome{Event: ev, ReflectedHour: -1})
		}
	}
	return s
}

// BeginHour applies the hour's churn events to the live world, updates
// the withdrawn-PoP set, flushes stale rate caches, and computes the
// scheduler's selection from pre-hour state. It must be called exactly
// once per hour, in order, on both the live and the replay path.
func (s *State) BeginHour(env *Env) *HourPlan {
	h := s.Hour
	evs := churn.EventsAt(s.Plan, h)
	for _, ev := range evs {
		s.Cfg.Churn.Apply(ev, env.World)
		switch ev.Kind {
		case churn.KindPoPWithdraw:
			s.Withdrawn[ev.PoP] = true
		case churn.KindPoPAnnounce:
			delete(s.Withdrawn, ev.PoP)
		case churn.KindChromiumOff:
			s.ChromiumOffHour = h
		case churn.KindDrift:
			s.DriftTicks++
		case churn.KindDiurnal:
			s.DiurnalTicks++
		}
	}
	if len(evs) > 0 && env.InvalidateRates != nil {
		env.InvalidateRates()
	}
	sel, scheduled := s.schedule(int32(h))
	return &HourPlan{
		Hour:      h,
		Start:     env.HourStart(h),
		Events:    evs,
		Sel:       sel,
		Scheduled: scheduled,
		Sub:       env.Asg.Subset(sel),
	}
}

// FinishHour folds the hour's observations into the ledger, updates
// scheduler memory (flip detection), decays evidence, runs coverage-lag
// detection, and appends the hour's view. On emit hours it also returns
// the rolling serving artifact (nil otherwise). After FinishHour the
// state is ready for the next BeginHour.
func (s *State) FinishHour(hp *HourPlan, d *HourDelta, env *Env) (*HourView, *ClientMapOut) {
	h := hp.Hour
	h32 := int32(h)

	// Mark per-task outcomes for everything scheduled this hour. A task
	// hit iff the delta carries a matching (PoP, domain, query scope) —
	// health failover is off in stream mode, so the hit's PoP is the
	// probing PoP.
	type tkey struct {
		pop, domain string
		scope       netx.Prefix
	}
	hits := make(map[tkey]bool, len(d.Pass.Hits))
	for i := range d.Pass.Hits {
		dh := &d.Pass.Hits[i]
		hits[tkey{dh.PoP, dh.Domain, dh.QueryScope}] = true
	}
	fresh := 0
	for pi, tis := range hp.Sel {
		pop := s.PoPs[pi]
		for _, ti := range tis {
			domain, scope := env.Asg.TaskAt(pi, ti)
			hit := hits[tkey{pop, domain, scope}]
			ts := &s.Tasks[pi][ti]
			if ts.LastProbe >= 0 && ts.PrevHit != hit {
				ts.FlipHour = h32
			}
			ts.LastProbe, ts.PrevHit = h32, hit
			if hit {
				ts.LastHit = h32
			}
		}
	}

	// Fold evidence: cache hits by response scope, then the DNS channel.
	for i := range d.Pass.Hits {
		dh := &d.Pass.Hits[i]
		if s.Ledger.AddHit(dh.Domain, dh.RespScope, dh.PoP, h32) {
			fresh++
		}
	}
	for _, p := range d.DNS {
		s.Ledger.AddDNS(p, h32)
	}

	// Decay, then capture the Chromium baseline at its event hour: the
	// channel has already gone quiet (the share flipped to zero before
	// this hour's tick), so the baseline is the still-live evidence the
	// map is about to lose.
	decayed := s.Ledger.DecayTo(h32)
	if s.ChromiumOffHour == h {
		s.ChromiumBase = s.Ledger.DNSActive()
	}
	s.detect(h)

	view := HourView{
		Hour:          h,
		Events:        len(hp.Events),
		Scheduled:     hp.Scheduled,
		Probes:        d.Pass.ProbesSent,
		Hits:          len(d.Pass.Hits),
		FreshScopes:   fresh,
		DecayedScopes: decayed,
		ActiveScopes:  s.Ledger.ActiveScopes(),
		DNSActive:     s.Ledger.DNSActive(),
		Withdrawn:     len(s.Withdrawn),
	}

	var out *ClientMapOut
	if (h+1)%s.Cfg.EmitEvery == 0 || h == s.Cfg.Hours-1 {
		out = s.buildMap(env, h)
		view.MapHash = out.Hash
	}
	s.Views = append(s.Views, view)
	s.Hour = h + 1
	return &s.Views[len(s.Views)-1], out
}

// detect runs the coverage-lag predicates over still-pending tracked
// events at the end of hour h.
func (s *State) detect(h int) {
	for i := range s.Outcomes {
		o := &s.Outcomes[i]
		if o.ReflectedHour >= 0 || o.Event.Hour > h {
			continue
		}
		ev := o.Event
		reflected := false
		switch ev.Kind {
		case churn.KindRealloc:
			last, covered := s.Ledger.CoveredLive(ev.Prefix.Addr())
			if ev.NewUsers > 0 {
				// Activation: the map reflects it once post-event evidence
				// covers the prefix.
				reflected = covered && int(last) >= ev.Hour
			} else {
				// Went dark: reflected once no live scope covers it.
				reflected = !covered
			}
		case churn.KindPoPWithdraw:
			reflected = !s.Ledger.PoPLive(ev.PoP)
		case churn.KindPoPAnnounce:
			last, live := s.Ledger.PoPLastHit(ev.PoP)
			reflected = live && int(last) >= ev.Hour
		case churn.KindChromiumOff:
			reflected = s.Ledger.DNSActive() <= s.ChromiumBase/2
		}
		if reflected {
			o.ReflectedHour = h
		}
	}
}
