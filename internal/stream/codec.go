package stream

import (
	"sort"

	"clientmap/internal/netx"
	"clientmap/internal/snapshot"
)

// Codecs for the streaming checkpoints and for the byte-exact state
// comparisons the determinism suite makes. The hour-delta kind string
// lives in internal/snapshot (next to the churn-event codec it uses);
// the view/ledger kinds live here because only this package produces
// them — the kind string namespace is shared either way.

// KindStreamViews frames an encoded hour-view sequence.
const KindStreamViews = "stream.Views"

// KindStreamLedger frames an encoded decay ledger.
const KindStreamLedger = "stream.Ledger"

// VersionStream versions both encodings above.
const VersionStream uint16 = 1

// EncodeHourDelta appends one hour checkpoint to w.
func EncodeHourDelta(w *snapshot.Writer, d *HourDelta) {
	w.Int(d.Hour)
	snapshot.EncodeChurnEvents(w, d.Events)
	snapshot.EncodePassDelta(w, d.Pass)
	w.Int(len(d.DNS))
	prev := uint64(0)
	for _, p := range d.DNS {
		// DNS /24s are sorted ascending; delta-encode like EncodeSet24.
		w.Uvarint(uint64(p) - prev)
		prev = uint64(p)
	}
}

// DecodeHourDelta reads an hour checkpoint written by EncodeHourDelta.
func DecodeHourDelta(r *snapshot.Reader) (*HourDelta, error) {
	d := &HourDelta{Hour: r.Int()}
	evs, err := snapshot.DecodeChurnEvents(r)
	if err != nil {
		return nil, err
	}
	d.Events = evs
	pass, err := snapshot.DecodePassDelta(r)
	if err != nil {
		return nil, err
	}
	d.Pass = pass
	// SliceLen bounds the count against the remaining payload, so a
	// forged checkpoint can neither pre-allocate nor append-grow past
	// the bytes it actually carries.
	n := r.SliceLen(1)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 0 {
		d.DNS = make([]netx.Slash24, 0, n)
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		prev += r.Uvarint()
		d.DNS = append(d.DNS, netx.Slash24(prev))
	}
	return d, r.Err()
}

// encodeSeries appends one evidence series to w.
func encodeSeries(w *snapshot.Writer, s *Series) {
	w.Int(len(s.B))
	for _, b := range s.B {
		w.Varint(int64(b.Hour))
		w.Varint(int64(b.Count))
	}
}

// MarshalViews frames the hour-view sequence as snapshot bytes, for
// byte-exact comparison of two runs' rolling summaries.
func MarshalViews(views []HourView) (data []byte, payloadHash string) {
	h := snapshot.Header{Kind: KindStreamViews, Version: VersionStream}
	return snapshot.Marshal(h, func(w *snapshot.Writer) {
		w.Int(len(views))
		for _, v := range views {
			w.Int(v.Hour)
			w.Int(v.Events)
			w.Int(v.Scheduled)
			w.Int(v.Probes)
			w.Int(v.Hits)
			w.Int(v.FreshScopes)
			w.Int(v.DecayedScopes)
			w.Int(v.ActiveScopes)
			w.Int(v.DNSActive)
			w.Int(v.Withdrawn)
			w.String(v.MapHash)
		}
	})
}

// MarshalLedger frames the full decay ledger in sorted key order, so two
// ledgers marshal to equal bytes iff they hold identical evidence.
func (l *Ledger) MarshalLedger() (data []byte, payloadHash string) {
	h := snapshot.Header{Kind: KindStreamLedger, Version: VersionStream}
	return snapshot.Marshal(h, func(w *snapshot.Writer) {
		w.Varint(int64(l.TTL))
		domains := sortedKeys(l.Domains)
		w.Int(len(domains))
		for _, d := range domains {
			w.String(d)
			scopes := l.Domains[d]
			keys := make([]netx.Prefix, 0, len(scopes))
			for p := range scopes {
				keys = append(keys, p)
			}
			sortPrefixes(keys)
			w.Int(len(keys))
			for _, p := range keys {
				snapshot.EncodePrefix(w, p)
				ss := scopes[p]
				encodeSeries(w, &ss.Hits)
				pops := sortedKeys(ss.PoPs)
				w.Int(len(pops))
				for _, pop := range pops {
					w.String(pop)
					encodeSeries(w, ss.PoPs[pop])
				}
			}
		}
		dns := make([]netx.Slash24, 0, len(l.DNS))
		for p := range l.DNS {
			dns = append(dns, p)
		}
		sortSlash24s(dns)
		w.Int(len(dns))
		for _, p := range dns {
			w.Uvarint(uint64(p))
			encodeSeries(w, l.DNS[p])
		}
	})
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortPrefixes(ps []netx.Prefix) {
	sort.Slice(ps, func(i, j int) bool { return prefixLess(ps[i], ps[j]) })
}

func sortSlash24s(ps []netx.Slash24) {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
}
