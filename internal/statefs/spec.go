package statefs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"clientmap/internal/randx"
)

// Config describes the disk-fault model Faulty injects. The zero value
// injects nothing. It follows the same grammar discipline as
// faults.Config: a -disk-faults spec parses into it, String renders the
// canonical spec back (Parse∘String is the identity on parsed configs),
// and the canonical spec doubles as the fingerprint.
type Config struct {
	// Seed keys every fault decision. Harnesses overwrite it with the
	// run seed so one seed reproduces world, probes, network faults and
	// disk faults.
	Seed randx.Seed
	// Torn rules tear matching atomic writes: the destination file ends
	// up holding a hash-chosen prefix of the data and the write reports
	// failure — the classic non-atomic-rename crash shape.
	Torn []Rule
	// ENOSPC rules fail matching writes partway through the temp file:
	// the destination is untouched, a partial *.tmp-* file is left
	// behind, and the write reports failure.
	ENOSPC []Rule
	// RenameFail rules fail matching writes at the rename step: the temp
	// file holds the complete data but never becomes the destination.
	RenameFail []Rule
	// Bitrot rules flip one hash-chosen bit in matching writes and
	// report success — the silent corruption only a checksum catches.
	Bitrot []Rule
	// Slow rules delay matching reads and writes — the degraded-disk
	// shape that turns checkpointing into the campaign's straggler.
	Slow []SlowRule
}

// Rule scopes one fault kind: paths containing Match (every path when
// Match is empty) are hit with probability Rate.
type Rule struct {
	Match string
	Rate  float64
}

// SlowRule delays operations on paths containing Match by Delay.
type SlowRule struct {
	Match string
	Delay time.Duration
}

// Parse builds a Config from a -disk-faults spec such as
//
//	torn=probe-pass-1@1,bitrot=@0.01,slow=.snap@5ms
//
// Keys: torn, enospc, rename-fail, bitrot — each "<match>@<rate>" with
// match a path substring (empty matches every path) and rate in [0,1] —
// and slow, "<match>@<duration>". A key may repeat to scope different
// rates to different paths. Empty and "off" mean no faults. The seed is
// left zero — harnesses key it to the run seed.
func Parse(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("statefs: %q is not key=value", kv)
		}
		switch k {
		case "torn", "enospc", "rename-fail", "bitrot":
			r, err := parseRule(k, v)
			if err != nil {
				return Config{}, err
			}
			switch k {
			case "torn":
				c.Torn = append(c.Torn, r)
			case "enospc":
				c.ENOSPC = append(c.ENOSPC, r)
			case "rename-fail":
				c.RenameFail = append(c.RenameFail, r)
			case "bitrot":
				c.Bitrot = append(c.Bitrot, r)
			}
		case "slow":
			match, delayStr, ok := strings.Cut(v, "@")
			if !ok {
				return Config{}, fmt.Errorf("statefs: slow %q: want <match>@<duration>", v)
			}
			d, err := time.ParseDuration(delayStr)
			if err != nil {
				return Config{}, fmt.Errorf("statefs: slow delay %q: %v", delayStr, err)
			}
			c.Slow = append(c.Slow, SlowRule{Match: match, Delay: d})
		default:
			return Config{}, fmt.Errorf("statefs: unknown key %q (want torn, enospc, rename-fail, bitrot, slow)", k)
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// parseRule parses "<match>@<rate>".
func parseRule(kind, v string) (Rule, error) {
	match, rateStr, ok := strings.Cut(v, "@")
	if !ok {
		return Rule{}, fmt.Errorf("statefs: %s %q: want <match>@<rate>", kind, v)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil {
		return Rule{}, fmt.Errorf("statefs: %s rate %q: %v", kind, rateStr, err)
	}
	return Rule{Match: match, Rate: rate}, nil
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return len(c.Torn) > 0 || len(c.ENOSPC) > 0 || len(c.RenameFail) > 0 ||
		len(c.Bitrot) > 0 || len(c.Slow) > 0
}

// badRate rejects rates outside [0,1] — including NaN, which compares
// false against both bounds and would otherwise slip through and poison
// every downstream hash comparison.
func badRate(v float64) bool {
	return math.IsNaN(v) || v < 0 || v > 1
}

// Validate checks every rule: rates in [0,1] (NaN rejected),
// non-negative delays.
func (c Config) Validate() error {
	for _, rs := range []struct {
		kind  string
		rules []Rule
	}{{"torn", c.Torn}, {"enospc", c.ENOSPC}, {"rename-fail", c.RenameFail}, {"bitrot", c.Bitrot}} {
		for _, r := range rs.rules {
			if badRate(r.Rate) {
				return fmt.Errorf("statefs: %s %q rate %v outside [0,1]", rs.kind, r.Match, r.Rate)
			}
		}
	}
	for _, s := range c.Slow {
		if s.Delay < 0 {
			return fmt.Errorf("statefs: slow %q has negative delay %v", s.Match, s.Delay)
		}
	}
	return nil
}

// String renders the config in the canonical -disk-faults spec grammar,
// so for any parseable config Parse(c.String()) reproduces c (with
// rules in sorted order). The seed is deliberately absent — harnesses
// key it to the run seed.
func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	var parts []string
	for _, rs := range []struct {
		kind  string
		rules []Rule
	}{{"torn", c.Torn}, {"enospc", c.ENOSPC}, {"rename-fail", c.RenameFail}, {"bitrot", c.Bitrot}} {
		rules := append([]Rule(nil), rs.rules...)
		sort.Slice(rules, func(i, j int) bool {
			if rules[i].Match != rules[j].Match {
				return rules[i].Match < rules[j].Match
			}
			return rules[i].Rate < rules[j].Rate
		})
		for _, r := range rules {
			parts = append(parts, fmt.Sprintf("%s=%s@%g", rs.kind, r.Match, r.Rate))
		}
	}
	slows := append([]SlowRule(nil), c.Slow...)
	sort.Slice(slows, func(i, j int) bool {
		if slows[i].Match != slows[j].Match {
			return slows[i].Match < slows[j].Match
		}
		return slows[i].Delay < slows[j].Delay
	})
	for _, s := range slows {
		parts = append(parts, fmt.Sprintf("slow=%s@%s", s.Match, s.Delay))
	}
	return strings.Join(parts, ",")
}

// Fingerprint renders the disk-fault model canonically for pipeline
// stage fingerprints. Identical to String — the canonical spec is the
// fingerprint.
func (c Config) Fingerprint() string { return c.String() }
