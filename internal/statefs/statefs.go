// Package statefs is the seam every byte of durable campaign state goes
// through: checkpoint writes and restores (internal/pipeline), shard
// steal-claim files (the experiments gate), the rolling serve artifact
// (serve.RollingExporter) and the streaming hour deltas. Production code
// uses Disk, which owns the crash-consistency discipline — unique temp
// file, fsync of the temp, rename, fsync of the parent directory — in
// exactly one place. Tests inject Faulty (see faulty.go), which speaks
// the same deterministic fault grammar as internal/faults but for the
// storage layer: torn renames, ENOSPC mid-checkpoint, silent bit rot.
//
// The interface is deliberately small and path-based (no file handles):
// state I/O in this codebase is whole-file — read a snapshot, atomically
// replace a snapshot, claim a steal file — and a handle-free surface is
// what keeps a fault-injecting implementation tractable: every operation
// is one call with one path, so every fault decision can be a pure hash
// of (seed, op, path, attempt).
package statefs

import (
	"os"
	"path/filepath"
)

// FS is the state-I/O surface. Implementations must be safe for
// concurrent use: stage goroutines and shard runners call into one FS
// from many goroutines.
type FS interface {
	// ReadFile returns the file's contents (os.ErrNotExist when absent).
	ReadFile(path string) ([]byte, error)
	// WriteAtomic replaces path with data all-or-nothing: after it
	// returns nil the file durably holds data; after an error or a crash
	// the previous contents (or absence) are still intact. Parent
	// directories are created as needed.
	WriteAtomic(path string, data []byte) error
	// CreateExclusive creates path with data, failing with os.ErrExist
	// if it already exists — the cross-process claim primitive the shard
	// gate's steal files rely on.
	CreateExclusive(path string, data []byte) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// Remove deletes a file or empty directory.
	Remove(path string) error
	// Rename moves a file, replacing any existing target.
	Rename(oldpath, newpath string) error
	// ReadDir lists a directory (os.ErrNotExist when absent).
	ReadDir(path string) ([]os.DirEntry, error)
}

// Or returns fs, or Disk when fs is nil — the resolution every consumer
// applies so a zero-value config means "the real disk".
func Or(fs FS) FS {
	if fs == nil {
		return Disk{}
	}
	return fs
}

// Disk is the production FS: the operating system's filesystem plus the
// crash-consistency discipline for atomic replacement.
type Disk struct{}

// ReadFile implements FS.
func (Disk) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteAtomic implements FS: temp file + fsync + rename + parent-dir
// fsync. The temp name is unique per writer (CreateTemp's random
// suffix): shard runners sharing a state directory may checkpoint the
// same stage concurrently — duplicate builds are deterministic and
// byte-identical — and a fixed temp name would let one writer rename
// the other's half-written file. The two fsyncs close the durability
// gap a bare rename leaves open: without syncing the temp file first, a
// host crash after the rename can surface an empty-but-renamed
// checkpoint (the rename metadata reached the journal before the data
// blocks); without syncing the parent directory, the rename itself may
// not survive the crash.
func (Disk) WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a host
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// CreateExclusive implements FS. The claim content is small and the
// claim's loss on crash is harmless (a lost claim is re-raced), but it
// is synced anyway: a claim that survives while the checkpoint it
// guards does not would be read as "someone is building this" forever.
func (Disk) CreateExclusive(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// MkdirAll implements FS.
func (Disk) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Remove implements FS.
func (Disk) Remove(path string) error { return os.Remove(path) }

// Rename implements FS.
func (Disk) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// ReadDir implements FS.
func (Disk) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }
