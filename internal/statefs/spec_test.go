package statefs

import (
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"off",
		"torn=probe-pass-1@1",
		"bitrot=@0.01",
		"enospc=calibration@0.5,rename-fail=stream-hour-3@1",
		"torn=a@0.1,torn=b@0.9,slow=.snap@5ms",
		"slow=@1h0m0s",
	}
	for _, spec := range cases {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		got := c.String()
		c2, err := Parse(got)
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", spec, got, err)
		}
		if got2 := c2.String(); got2 != got {
			t.Errorf("String not a fixpoint: %q -> %q -> %q", spec, got, got2)
		}
		if c.Fingerprint() != got {
			t.Errorf("Fingerprint(%q) = %q, want String %q", spec, c.Fingerprint(), got)
		}
	}
}

func TestParseEmptyAndOff(t *testing.T) {
	for _, spec := range []string{"", "off", "  off  "} {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if c.Enabled() {
			t.Errorf("Parse(%q).Enabled() = true", spec)
		}
		if c.String() != "off" {
			t.Errorf("Parse(%q).String() = %q, want \"off\"", spec, c.String())
		}
	}
}

func TestParseCanonicalOrder(t *testing.T) {
	c, err := Parse("slow=x@1ms,bitrot=@1,torn=b@0.5,torn=a@0.5,enospc=@0.2,rename-fail=@0.3")
	if err != nil {
		t.Fatal(err)
	}
	want := "torn=a@0.5,torn=b@0.5,enospc=@0.2,rename-fail=@0.3,bitrot=@1,slow=x@1ms"
	if got := c.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"torn",                 // not key=value
		"torn=probe",           // missing @rate
		"torn=probe@huh",       // unparseable rate
		"torn=@1.5",            // rate out of range
		"bitrot=@-0.1",         // negative rate
		"bitrot=@NaN",          // NaN rate
		"slow=x@fast",          // unparseable duration
		"slow=x@-5ms",          // negative delay
		"scratch=@1",           // unknown key
		"torn=@1,,bitrot=@0.1", // empty clause
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Config{Torn: []Rule{{"x", 0.5}}, Slow: []SlowRule{{"", time.Millisecond}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := (Config{ENOSPC: []Rule{{"", 2}}}).Validate(); err == nil {
		t.Error("rate 2 passed Validate")
	}
	if err := (Config{Slow: []SlowRule{{"", -1}}}).Validate(); err == nil {
		t.Error("negative delay passed Validate")
	}
}

// FuzzParse asserts the grammar's fixpoint: any spec that parses must
// re-render to a spec that parses to the same canonical form.
func FuzzParse(f *testing.F) {
	f.Add("off")
	f.Add("torn=probe-pass-1@1")
	f.Add("bitrot=@0.01,slow=.snap@5ms")
	f.Add("enospc=a@0.25,rename-fail=b@0.75,torn=@0")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := Parse(spec)
		if err != nil {
			return
		}
		s1 := c.String()
		c2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical spec %q does not re-parse: %v", s1, err)
		}
		if s2 := c2.String(); s2 != s1 {
			t.Fatalf("String not a fixpoint: %q -> %q -> %q", spec, s1, s2)
		}
	})
}
