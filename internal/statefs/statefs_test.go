package statefs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestDiskWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deep", "state.snap")
	var d Disk

	if err := d.WriteAtomic(path, []byte("one")); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	got, err := d.ReadFile(path)
	if err != nil || string(got) != "one" {
		t.Fatalf("ReadFile = %q, %v, want \"one\"", got, err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", info.Mode().Perm())
	}

	// Replacement is in-place and leaves no temp litter.
	if err := d.WriteAtomic(path, []byte("two")); err != nil {
		t.Fatalf("WriteAtomic replace: %v", err)
	}
	if got, _ := d.ReadFile(path); string(got) != "two" {
		t.Fatalf("after replace = %q, want \"two\"", got)
	}
	assertNoLitter(t, dir)
}

func assertNoLitter(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() && strings.Contains(de.Name(), ".tmp-") {
			t.Errorf("temp litter left behind: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Concurrent writers to one path must each succeed, leave one of the
// written values, and leave no litter — the property shard runners
// doing duplicate builds rely on.
func TestDiskWriteAtomicConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shared.snap")
	var d Disk
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte('a' + i)}, 4096)
			errs[i] = d.WriteAtomic(path, data)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, err := d.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4096 {
		t.Fatalf("final file is %d bytes, want 4096 (torn interleave?)", len(got))
	}
	for _, b := range got {
		if b != got[0] {
			t.Fatalf("final file mixes writers' bytes: %q vs %q", b, got[0])
		}
	}
	assertNoLitter(t, dir)
}

func TestDiskCreateExclusive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "claim.steal")
	var d Disk
	if err := d.CreateExclusive(path, []byte("3\n")); err != nil {
		t.Fatalf("CreateExclusive: %v", err)
	}
	if err := d.CreateExclusive(path, []byte("4\n")); !errors.Is(err, os.ErrExist) {
		t.Fatalf("second CreateExclusive = %v, want ErrExist", err)
	}
	if got, _ := d.ReadFile(path); string(got) != "3\n" {
		t.Fatalf("claim = %q, want first writer's content", got)
	}
}

func TestOr(t *testing.T) {
	if _, ok := Or(nil).(Disk); !ok {
		t.Fatalf("Or(nil) = %T, want Disk", Or(nil))
	}
	f := NewFaulty(Config{}, nil)
	if Or(f) != FS(f) {
		t.Fatal("Or must pass a non-nil FS through")
	}
}

func TestDiskReadDirAndRemove(t *testing.T) {
	dir := t.TempDir()
	var d Disk
	if err := d.MkdirAll(filepath.Join(dir, "sub")); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAtomic(filepath.Join(dir, "a.snap"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	ents, err := d.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("ReadDir = %v, want [a.snap sub]", names)
	}
	if err := d.Remove(filepath.Join(dir, "a.snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadFile(filepath.Join(dir, "a.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ReadFile after Remove = %v, want ErrNotExist", err)
	}
	if _, err := d.ReadDir(filepath.Join(dir, "missing")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ReadDir missing = %v, want ErrNotExist", err)
	}
}
