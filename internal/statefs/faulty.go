package statefs

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks a failure manufactured by Faulty. Callers treat it
// exactly like a real disk error — the point of the seam — but tests
// can tell an injected crash from an accidental one.
var ErrInjected = errors.New("statefs: injected disk fault")

// Faulty wraps an FS and injects the Config's disk faults. Every
// decision is a pure hash of (seed, op, path, attempt) — the attempt
// counter is per (op, path), so "the 3rd write of probe-pass-1.snap is
// torn" holds in every schedule — which is what makes a crash×disk-fault
// matrix reproducible enough to assert byte-identical convergence.
//
// Fault semantics, all applied at WriteAtomic (reads and renames only
// ever see slow): torn writes a hash-chosen prefix of the data to the
// destination itself and fails — the atomicity violation a non-syncing
// filesystem can surface after a host crash; enospc leaves a partial
// *.tmp-* file and fails with the destination untouched; rename-fail
// leaves a complete *.tmp-* file and fails; bitrot flips one
// hash-chosen bit and succeeds silently. The flip is biased into the
// upper half of the file: for snapshot containers that is payload
// territory, where only the checksum can catch it — a flip in the
// header's fingerprint would merely read as a stale checkpoint, which
// the pipeline already tolerates by design.
type Faulty struct {
	inner FS
	cfg   Config

	mu       sync.Mutex
	attempts map[string]int

	torn, enospc, renameFail, bitrot, slowed atomic.Int64
}

// NewFaulty returns a Faulty injecting cfg over inner (Disk when nil).
func NewFaulty(cfg Config, inner FS) *Faulty {
	return &Faulty{inner: Or(inner), cfg: cfg, attempts: make(map[string]int)}
}

// Stats is a point-in-time snapshot of injected-fault totals.
type Stats struct {
	Torn       int64
	ENOSPC     int64
	RenameFail int64
	Bitrot     int64
	Slowed     int64
}

// Snapshot returns the injected totals so far.
func (f *Faulty) Snapshot() Stats {
	return Stats{
		Torn:       f.torn.Load(),
		ENOSPC:     f.enospc.Load(),
		RenameFail: f.renameFail.Load(),
		Bitrot:     f.bitrot.Load(),
		Slowed:     f.slowed.Load(),
	}
}

// attempt returns the 0-based sequence number of this (op, path) pair.
func (f *Faulty) attempt(op, path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := op + "\x00" + path
	n := f.attempts[k]
	f.attempts[k] = n + 1
	return n
}

// key builds the decision key "disk/<kind>/<attempt>/<op>/<path>".
// Byte-built with the variable field leading the fixed tail, like every
// other per-event fault key (see faults.Brownout.severity).
func key(kind string, attempt int, op, path string) []byte {
	var kb [96]byte
	k := append(kb[:0], "disk/"...)
	k = append(k, kind...)
	k = append(k, '/')
	k = strconv.AppendInt(k, int64(attempt), 10)
	k = append(k, '/')
	k = append(k, op...)
	k = append(k, '/')
	k = append(k, path...)
	return k
}

// hit reports whether any rule of the kind fires for this operation.
// One hash per kind: with several matching rules the draw is shared, so
// the effective rate is the largest matching rate.
func (f *Faulty) hit(kind string, rules []Rule, op, path string, attempt int) bool {
	u := -1.0
	for _, r := range rules {
		if !strings.Contains(path, r.Match) {
			continue
		}
		if u < 0 {
			u = f.cfg.Seed.HashUnitB(key(kind, attempt, op, path))
		}
		if u < r.Rate {
			return true
		}
	}
	return false
}

// sleep applies the longest matching slow rule.
func (f *Faulty) sleep(path string) {
	var d time.Duration
	for _, s := range f.cfg.Slow {
		if strings.Contains(path, s.Match) && s.Delay > d {
			d = s.Delay
		}
	}
	if d > 0 {
		f.slowed.Add(1)
		time.Sleep(d)
	}
}

// cut returns a hash-chosen prefix length in [0, n), the point a torn
// or out-of-space write stopped at. Always strictly short of n so the
// injected file is genuinely incomplete.
func (f *Faulty) cut(kind string, n, attempt int, op, path string) int {
	if n == 0 {
		return 0
	}
	c := int(f.cfg.Seed.HashUnitB(key(kind+"-cut", attempt, op, path)) * float64(n))
	if c >= n {
		c = n - 1
	}
	return c
}

// ReadFile implements FS (slow rules only).
func (f *Faulty) ReadFile(path string) ([]byte, error) {
	f.attempt("read", path)
	f.sleep(path)
	return f.inner.ReadFile(path)
}

// WriteAtomic implements FS with the Config's write faults.
func (f *Faulty) WriteAtomic(path string, data []byte) error {
	n := f.attempt("write", path)
	f.sleep(path)
	switch {
	case f.hit("enospc", f.cfg.ENOSPC, "write", path, n):
		c := f.cut("enospc", len(data), n, "write", path)
		// Materialize the partial temp file a real ENOSPC leaves behind.
		// The litter itself is written atomically (it stands in for a
		// file whose write already stopped).
		_ = f.inner.WriteAtomic(tmpName(path, n), data[:c])
		f.enospc.Add(1)
		return fmt.Errorf("%w: no space after %d of %d bytes of %s", ErrInjected, c, len(data), path)
	case f.hit("rename-fail", f.cfg.RenameFail, "write", path, n):
		_ = f.inner.WriteAtomic(tmpName(path, n), data)
		f.renameFail.Add(1)
		return fmt.Errorf("%w: rename into %s failed", ErrInjected, path)
	case f.hit("torn", f.cfg.Torn, "write", path, n):
		c := f.cut("torn", len(data), n, "write", path)
		_ = f.inner.WriteAtomic(path, data[:c])
		f.torn.Add(1)
		return fmt.Errorf("%w: torn write of %s (%d of %d bytes)", ErrInjected, path, c, len(data))
	case f.hit("bitrot", f.cfg.Bitrot, "write", path, n):
		b := append([]byte(nil), data...)
		if len(b) > 0 {
			h := f.cfg.Seed.Hash64B(key("bitrot-at", n, "write", path))
			half := len(b) / 2
			off := half + int(h%uint64(len(b)-half))
			b[off] ^= 1 << ((h >> 32) & 7)
		}
		f.bitrot.Add(1)
		return f.inner.WriteAtomic(path, b)
	}
	return f.inner.WriteAtomic(path, data)
}

// tmpName is the litter filename an injected partial write leaves. It
// carries the ".tmp-" marker statefsck sweeps.
func tmpName(path string, attempt int) string {
	return fmt.Sprintf("%s.tmp-injected-%d", path, attempt)
}

// CreateExclusive implements FS. Claim files fail cleanly (no litter):
// a partially written claim would wedge the gate's collision re-read,
// which is a liveness bug in the consumer, not a fault shape this layer
// wants to manufacture.
func (f *Faulty) CreateExclusive(path string, data []byte) error {
	n := f.attempt("create", path)
	f.sleep(path)
	if f.hit("enospc", f.cfg.ENOSPC, "create", path, n) {
		f.enospc.Add(1)
		return fmt.Errorf("%w: no space creating %s", ErrInjected, path)
	}
	return f.inner.CreateExclusive(path, data)
}

// MkdirAll implements FS (pass-through).
func (f *Faulty) MkdirAll(path string) error { return f.inner.MkdirAll(path) }

// Remove implements FS (pass-through).
func (f *Faulty) Remove(path string) error { return f.inner.Remove(path) }

// Rename implements FS (slow rules only; torn/rename-fail target
// WriteAtomic, the operation campaigns actually crash in).
func (f *Faulty) Rename(oldpath, newpath string) error {
	f.sleep(newpath)
	return f.inner.Rename(oldpath, newpath)
}

// ReadDir implements FS (pass-through).
func (f *Faulty) ReadDir(path string) ([]os.DirEntry, error) { return f.inner.ReadDir(path) }
