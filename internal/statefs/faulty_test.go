package statefs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clientmap/internal/randx"
)

func faultyOver(t *testing.T, spec string, seed randx.Seed) (*Faulty, string) {
	t.Helper()
	cfg, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	cfg.Seed = seed
	return NewFaulty(cfg, nil), t.TempDir()
}

func TestFaultyTorn(t *testing.T) {
	f, dir := faultyOver(t, "torn=victim@1", 1)
	path := filepath.Join(dir, "victim.snap")
	data := bytes.Repeat([]byte("checkpoint"), 100)

	err := f.WriteAtomic(path, data)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("torn write must leave a destination file: %v", rerr)
	}
	if len(got) >= len(data) {
		t.Fatalf("torn file holds %d bytes, want strictly fewer than %d", len(got), len(data))
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("torn file is not a prefix of the written data")
	}
	if s := f.Snapshot(); s.Torn != 1 {
		t.Fatalf("Stats.Torn = %d, want 1", s.Torn)
	}

	// A path the rule does not match writes through untouched.
	other := filepath.Join(dir, "bystander.snap")
	if err := f.WriteAtomic(other, data); err != nil {
		t.Fatalf("bystander write: %v", err)
	}
	if got, _ := os.ReadFile(other); !bytes.Equal(got, data) {
		t.Fatal("bystander file corrupted")
	}
}

func TestFaultyENOSPC(t *testing.T) {
	f, dir := faultyOver(t, "enospc=victim@1", 2)
	path := filepath.Join(dir, "victim.snap")
	data := bytes.Repeat([]byte("checkpoint"), 100)

	err := f.WriteAtomic(path, data)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("enospc write error = %v, want ErrInjected", err)
	}
	if _, rerr := os.ReadFile(path); !errors.Is(rerr, os.ErrNotExist) {
		t.Fatalf("enospc must leave the destination untouched, got %v", rerr)
	}
	litter := findLitter(t, dir)
	if len(litter) != 1 {
		t.Fatalf("enospc litter = %v, want exactly one partial temp file", litter)
	}
	got, _ := os.ReadFile(litter[0])
	if len(got) >= len(data) || !bytes.Equal(got, data[:len(got)]) {
		t.Fatalf("enospc litter holds %d bytes, want a strict prefix of %d", len(got), len(data))
	}
	if s := f.Snapshot(); s.ENOSPC != 1 {
		t.Fatalf("Stats.ENOSPC = %d, want 1", s.ENOSPC)
	}
}

func TestFaultyRenameFail(t *testing.T) {
	f, dir := faultyOver(t, "rename-fail=victim@1", 3)
	path := filepath.Join(dir, "victim.snap")
	data := []byte("complete checkpoint bytes")

	err := f.WriteAtomic(path, data)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("rename-fail write error = %v, want ErrInjected", err)
	}
	if _, rerr := os.ReadFile(path); !errors.Is(rerr, os.ErrNotExist) {
		t.Fatalf("rename-fail must leave the destination untouched, got %v", rerr)
	}
	litter := findLitter(t, dir)
	if len(litter) != 1 {
		t.Fatalf("rename-fail litter = %v, want exactly one temp file", litter)
	}
	if got, _ := os.ReadFile(litter[0]); !bytes.Equal(got, data) {
		t.Fatal("rename-fail litter must hold the complete data")
	}
	if s := f.Snapshot(); s.RenameFail != 1 {
		t.Fatalf("Stats.RenameFail = %d, want 1", s.RenameFail)
	}
}

func TestFaultyBitrot(t *testing.T) {
	f, dir := faultyOver(t, "bitrot=victim@1", 4)
	path := filepath.Join(dir, "victim.snap")
	data := bytes.Repeat([]byte("checkpoint"), 100)

	if err := f.WriteAtomic(path, data); err != nil {
		t.Fatalf("bitrot must report success, got %v", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(got) != len(data) {
		t.Fatalf("bitrot file is %d bytes, want %d", len(got), len(data))
	}
	diff := 0
	at := -1
	for i := range got {
		if got[i] != data[i] {
			diff++
			at = i
		}
	}
	if diff != 1 {
		t.Fatalf("bitrot changed %d bytes, want exactly 1", diff)
	}
	if at < len(data)/2 {
		t.Fatalf("bitrot flipped offset %d, want the upper half (>= %d)", at, len(data)/2)
	}
	if b := got[at] ^ data[at]; b&(b-1) != 0 {
		t.Fatalf("bitrot flipped more than one bit: %08b", b)
	}
	if s := f.Snapshot(); s.Bitrot != 1 {
		t.Fatalf("Stats.Bitrot = %d, want 1", s.Bitrot)
	}
}

func TestFaultySlow(t *testing.T) {
	f, dir := faultyOver(t, "slow=victim@30ms", 5)
	slow := filepath.Join(dir, "victim.snap")
	fast := filepath.Join(dir, "bystander.snap")

	start := time.Now()
	if err := f.WriteAtomic(slow, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("slow write took %v, want >= 30ms", took)
	}
	if err := f.WriteAtomic(fast, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile(slow); err != nil {
		t.Fatal(err)
	}
	if s := f.Snapshot(); s.Slowed != 2 {
		t.Fatalf("Stats.Slowed = %d, want 2 (one write, one read)", s.Slowed)
	}
}

// Decisions are a pure hash of (seed, op, path, attempt): two Faulty
// instances with the same seed injure the same operations, and a
// different seed draws a different schedule.
func TestFaultyDeterminism(t *testing.T) {
	dir := t.TempDir()
	run := func(seed randx.Seed) []bool {
		cfg, err := Parse("torn=@0.5")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = seed
		f := NewFaulty(cfg, nil)
		var hits []bool
		for i := 0; i < 32; i++ {
			path := filepath.Join(dir, "s", "stage-"+string(rune('a'+i%8))+".snap")
			err := f.WriteAtomic(path, []byte("data"))
			hits = append(hits, errors.Is(err, ErrInjected))
		}
		return hits
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew an identical 32-op fault schedule (suspicious)")
	}
	// Rate 0.5 over 32 draws: both outcomes must occur.
	torn := 0
	for _, h := range a {
		if h {
			torn++
		}
	}
	if torn == 0 || torn == len(a) {
		t.Fatalf("rate 0.5 produced %d/%d hits", torn, len(a))
	}
}

// The attempt counter advances per (op, path): with a rule keyed to
// fire only sometimes, retrying the same path eventually succeeds —
// the property resume-after-crash relies on.
func TestFaultyAttemptAdvances(t *testing.T) {
	f, dir := faultyOver(t, "torn=@0.5", 7)
	path := filepath.Join(dir, "retry.snap")
	sawFail, sawOK := false, false
	for i := 0; i < 64 && !(sawFail && sawOK); i++ {
		if err := f.WriteAtomic(path, []byte("data")); err != nil {
			sawFail = true
		} else {
			sawOK = true
		}
	}
	if !sawFail || !sawOK {
		t.Fatalf("64 attempts at rate 0.5: fail=%v ok=%v — attempt not in the key?", sawFail, sawOK)
	}
}

func TestFaultyCreateExclusive(t *testing.T) {
	f, dir := faultyOver(t, "enospc=claim@1", 8)
	path := filepath.Join(dir, "claim.steal")
	if err := f.CreateExclusive(path, []byte("1\n")); !errors.Is(err, ErrInjected) {
		t.Fatalf("CreateExclusive = %v, want ErrInjected", err)
	}
	if _, err := os.ReadFile(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("injected CreateExclusive failure must not leave a partial claim")
	}
	// Pass-through when no rule matches.
	ok := filepath.Join(dir, "other.steal")
	if err := f.CreateExclusive(ok, []byte("1\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateExclusive(ok, []byte("2\n")); !errors.Is(err, os.ErrExist) {
		t.Fatalf("second CreateExclusive = %v, want ErrExist", err)
	}
}

func findLitter(t *testing.T, dir string) []string {
	t.Helper()
	var litter []string
	err := filepath.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() && strings.Contains(de.Name(), ".tmp-") {
			litter = append(litter, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return litter
}
