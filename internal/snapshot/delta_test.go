package snapshot

import (
	"reflect"
	"testing"

	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/faults"
	"clientmap/internal/health"
	"clientmap/internal/metrics"
)

func TestPassDeltaRoundTrip(t *testing.T) {
	d := &cacheprobe.PassDelta{
		Base:       "abcdef0123456789abcdef0123456789abcdef0123456789abcdef0123456789",
		Pass:       4,
		Passes:     9,
		PassTime:   ts(7200),
		ProbesSent: 12345,
		Assigned:   map[string]int{"fra": 40, "iad": 64, "nrt": 5},
		Hits: []cacheprobe.DeltaHit{
			{Domain: "example.com", QueryScope: pfx(0x01020000, 16), RespScope: pfx(0x01020300, 24), PoP: "fra", At: ts(7260)},
			{Domain: "video.example", QueryScope: pfx(0x0a000000, 8), RespScope: pfx(0x0a0b0000, 16), PoP: "iad", At: ts(7320)},
		},
		Faults: cacheprobe.FaultStats{
			InjectedDrops: 3, OutageDrops: 1, Truncations: 2, Duplicates: 4,
			BrownoutDrops: 5, FlapDrops: 6, RetriesSpent: 7, RetriesRecovered: 8,
			BudgetExhausted: 9,
		},
		Metrics: metrics.Ledger{"cacheprobe/probes": 12345, "health/hedges_fired": 2},
		Health: health.Ledger{
			Windows:     map[string][]health.WindowSum{"fra": {{Index: 2, OK: 30, Fail: 4}}},
			Transitions: []health.Transition{{Target: "fra", At: ts(7300), From: health.Closed, To: health.Open}},
			HedgesFired: 2, HedgesWon: 1,
			Coverage:   []health.PassCoverage{{Pass: 4, Assigned: 109, Primary: 100, Trial: 2, Alternate: 3, Fallback: 3, Lost: 1}},
			FailedOver: map[string]int64{"fra": 6},
			LostTasks:  map[string]map[int]int{"fra": {17: 1}},
		},
	}
	roundTrip(t, KindCampaignDelta, VersionCampaignDelta,
		func(w *Writer) { EncodePassDelta(w, d) },
		func(r *Reader) {
			got, err := DecodePassDelta(r)
			if err != nil {
				t.Fatalf("DecodePassDelta: %v", err)
			}
			if !reflect.DeepEqual(got, d) {
				t.Errorf("pass delta round-trip:\n got %+v\nwant %+v", got, d)
			}
		})
}

// TestPassDeltaRoundTripEmpty: a delta from a pass that observed nothing
// (no hits, no faults, degradation off) survives the trip with its empty
// collections in decodable form.
func TestPassDeltaRoundTripEmpty(t *testing.T) {
	d := &cacheprobe.PassDelta{Base: "00", Pass: 0, Passes: 1, PassTime: ts(0), Metrics: metrics.Ledger{}}
	roundTrip(t, KindCampaignDelta, VersionCampaignDelta,
		func(w *Writer) { EncodePassDelta(w, d) },
		func(r *Reader) {
			got, err := DecodePassDelta(r)
			if err != nil {
				t.Fatalf("DecodePassDelta: %v", err)
			}
			if !reflect.DeepEqual(got, d) {
				t.Errorf("empty delta round-trip:\n got %+v\nwant %+v", got, d)
			}
		})
}

func TestShardResultRoundTrip(t *testing.T) {
	s := &cacheprobe.ShardResult{
		Pass: 2,
		Units: []cacheprobe.ShardUnit{
			{PoPIndex: 0, PoP: "fra", Lo: 0, Hi: 20},
			{PoPIndex: 1, PoP: "iad", Lo: 32, Hi: 64},
		},
		Tasks: []cacheprobe.ShardTaskResult{
			// A hit carries its response scope and timestamp...
			{PoPIndex: 0, TaskIndex: 3, Hit: true, RespScope: pfx(0x01020300, 24), At: ts(100),
				Probes: 2, RetrySpent: 1, RetryRecovered: 1, HedgeFired: 1, HedgeWon: 1},
			// ...a miss must not (the encoder gates those fields on Hit).
			{PoPIndex: 1, TaskIndex: 40, Probes: 3, RetrySpent: 2, RetryExhausted: 1},
		},
		Faults:  faults.Stats{Drops: 5, OutageDrops: 1, Truncations: 2, Duplicates: 3, BrownoutDrops: 4, FlapDrops: 6},
		Metrics: metrics.Ledger{"cacheprobe/probes": 77},
		Windows: map[string][]health.WindowSum{"iad": {{Index: 0, OK: 18, Fail: 2}, {Index: 1, OK: 20}}},
	}
	roundTrip(t, KindShardResult, VersionShardResult,
		func(w *Writer) { EncodeShardResult(w, s) },
		func(r *Reader) {
			got, err := DecodeShardResult(r)
			if err != nil {
				t.Fatalf("DecodeShardResult: %v", err)
			}
			if !reflect.DeepEqual(got, s) {
				t.Errorf("shard result round-trip:\n got %+v\nwant %+v", got, s)
			}
		})
}
