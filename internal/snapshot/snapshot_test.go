package snapshot

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"clientmap/internal/apnic"
	"clientmap/internal/asdb"
	"clientmap/internal/cdn"
	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/core/datasets"
	"clientmap/internal/core/dnslogs"
	"clientmap/internal/netx"
	"clientmap/internal/world"
)

func ts(sec int64) time.Time { return time.Unix(sec, 12345).UTC() }

func pfx(a uint32, bits int) netx.Prefix { return netx.PrefixFrom(netx.Addr(a), bits) }

// roundTrip marshals with enc, reopens, checks the header, and hands the
// payload reader to dec. It also asserts encoding determinism: encoding
// the same value twice must yield the same bytes (and therefore the same
// content hash), since pipeline fingerprints chain on artifact hashes.
func roundTrip(t *testing.T, kind string, version uint16, enc func(*Writer), dec func(*Reader)) {
	t.Helper()
	h := Header{Kind: kind, Version: version, Fingerprint: "fp-test"}
	data, hash1 := Marshal(h, enc)
	_, hash2 := Marshal(h, enc)
	if hash1 != hash2 {
		t.Fatalf("%s: non-deterministic encoding: %s vs %s", kind, hash1, hash2)
	}

	gh, r, hash3, err := Open(data)
	if err != nil {
		t.Fatalf("%s: Open: %v", kind, err)
	}
	if hash3 != hash1 {
		t.Errorf("%s: Open hash %s, Marshal hash %s", kind, hash3, hash1)
	}
	if gh != h {
		t.Errorf("%s: header round-trip: got %+v, want %+v", kind, gh, h)
	}
	if err := Check(gh, kind, version); err != nil {
		t.Errorf("%s: Check: %v", kind, err)
	}
	dec(r)
	if err := r.Err(); err != nil {
		t.Errorf("%s: decode error: %v", kind, err)
	}
}

func TestCampaignRoundTrip(t *testing.T) {
	c := cacheprobe.NewCampaign()
	c.Passes, c.ProbesSent, c.PreScanQueries = 3, 98765, 4321
	c.PassTimes = []time.Time{ts(0), ts(3600), ts(7200)}
	c.PoPs["fra"] = &cacheprobe.PoPCalibration{
		PoP: "fra", Vantage: "aws:eu-central-1", RadiusKm: 1234.5,
		HitDistancesKm: []float64{10.5, 200.25, 999}, Assigned: 42,
	}
	c.PoPs["iad"] = &cacheprobe.PoPCalibration{PoP: "iad", Vantage: "aws:us-east-1", RadiusKm: 500}
	c.ScopesByDomain["example.com"] = []netx.Prefix{pfx(0x01020300, 24), pfx(0x0a000000, 16)}
	c.ScopesByDomain["empty.org"] = nil
	c.Hits["example.com"] = map[netx.Prefix]*cacheprobe.Hit{
		pfx(0x01020300, 24): {
			RespScope: pfx(0x01020300, 24), QueryScope: pfx(0x01020000, 16),
			PoP: "fra", Domain: "example.com", Count: 7, PassMask: 0b101,
			Times: []time.Time{ts(60), ts(120)},
		},
		pfx(0x0a000000, 16): {
			RespScope: pfx(0x0a000000, 16), QueryScope: pfx(0x0a000000, 16),
			PoP: "iad", Domain: "example.com", Count: 1, PassMask: 1 << 63,
		},
	}
	c.ScopeDiffs["example.com"] = map[int]int{0: 12, 8: 3}
	c.PoPHits["fra"] = 1
	c.PoPHits["iad"] = 1
	c.Faults = cacheprobe.FaultStats{
		InjectedDrops: 321, OutageDrops: 45, Truncations: 6, Duplicates: 7,
		RetriesSpent: 280, RetriesRecovered: 270, BudgetExhausted: 11,
	}
	c.Metrics["cacheprobe/probe/probes"] = 98765
	c.Metrics["cacheprobe/pop/fra/retry_delay_ms/le=100"] = 12
	c.Metrics["dnsnet/vantage/timeouts"] = 0

	roundTrip(t, KindCampaign, VersionCampaign,
		func(w *Writer) { EncodeCampaign(w, c) },
		func(r *Reader) {
			got, err := DecodeCampaign(r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, c) {
				t.Errorf("campaign round-trip mismatch:\ngot  %+v\nwant %+v", got, c)
			}
		})
}

func TestDNSLogsRoundTrip(t *testing.T) {
	res := &dnslogs.Result{
		ResolverCounts: map[netx.Addr]float64{0x08080808: 12.5, 0x01010101: 3},
		TotalQueries:   1e6, PatternMatches: 4242.5, FilteredNames: 17,
		LettersRead: []string{"J", "H", "M"},
		OpenRetries: 3,
	}
	roundTrip(t, KindDNSLogs, VersionDNSLogs,
		func(w *Writer) { EncodeDNSLogs(w, res) },
		func(r *Reader) {
			got, err := DecodeDNSLogs(r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, res) {
				t.Errorf("dnslogs round-trip mismatch:\ngot  %+v\nwant %+v", got, res)
			}
		})
}

func TestCDNRoundTrip(t *testing.T) {
	d := &cdn.Datasets{
		Clients: &cdn.Clients{
			Volume: map[netx.Slash24]int64{0x010203: 100, 0x0a0b0c: 5},
			Total:  105,
		},
		Resolvers: &cdn.Resolvers{
			ClientIPs: map[netx.Addr]int64{0x08080808: 250},
			Total:     250,
		},
		ECS: &cdn.ECSPrefixes{
			Queries: map[netx.Prefix]int64{pfx(0x01020300, 24): 9},
			Total:   9,
		},
		Day: ts(86400),
	}
	roundTrip(t, KindCDN, VersionCDN,
		func(w *Writer) { EncodeCDN(w, d) },
		func(r *Reader) {
			got, err := DecodeCDN(r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, d) {
				t.Errorf("cdn round-trip mismatch:\ngot  %+v\nwant %+v", got, d)
			}
		})
}

func TestAPNICRoundTrip(t *testing.T) {
	e := &apnic.Estimates{
		Users:        map[uint32]float64{65001: 1000.5, 65002: 0.25},
		Impressions:  map[uint32]int{65001: 300},
		CountryUsers: map[string]float64{"US": 5000, "DE": 750.5},
	}
	roundTrip(t, KindAPNIC, VersionAPNIC,
		func(w *Writer) { EncodeAPNIC(w, e) },
		func(r *Reader) {
			got, err := DecodeAPNIC(r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, e) {
				t.Errorf("apnic round-trip mismatch:\ngot  %+v\nwant %+v", got, e)
			}
		})
}

func TestASDBRoundTrip(t *testing.T) {
	db := asdb.FromCategories(map[uint32]world.Category{
		65001: world.Category("isp"),
		65002: world.Category("hosting"),
	})
	roundTrip(t, KindASDB, VersionASDB,
		func(w *Writer) { EncodeASDB(w, db) },
		func(r *Reader) {
			got, err := DecodeASDB(r)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(db) {
				t.Error("asdb round-trip mismatch")
			}
		})
}

func TestDatasetRoundTrips(t *testing.T) {
	pd := datasets.NewPrefixDataset("cache probing")
	pd.Add(0x010203, 0) // presence-only member
	pd.Add(0x0a0b0c, 3.5)
	roundTrip(t, KindPrefixDataset, VersionPrefixDataset,
		func(w *Writer) { EncodePrefixDataset(w, pd) },
		func(r *Reader) {
			got, err := DecodePrefixDataset(r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, pd) {
				t.Errorf("prefix dataset round-trip mismatch:\ngot  %+v\nwant %+v", got, pd)
			}
		})

	ad := datasets.NewASDataset("APNIC")
	ad.Add(65001, 10)
	ad.Add(65002, 0.5)
	roundTrip(t, KindASDataset, VersionASDataset,
		func(w *Writer) { EncodeASDataset(w, ad) },
		func(r *Reader) {
			got, err := DecodeASDataset(r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ad) {
				t.Errorf("as dataset round-trip mismatch:\ngot  %+v\nwant %+v", got, ad)
			}
		})
}

func TestVersionMismatch(t *testing.T) {
	data, _ := Marshal(Header{Kind: KindCampaign, Version: 2, Fingerprint: "x"},
		func(w *Writer) { w.Int(1) })
	h, _, _, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	err = Check(h, KindCampaign, 1)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Check across artifact versions: got %v, want ErrVersionMismatch", err)
	}
	if !strings.Contains(err.Error(), "snapshot version mismatch") {
		t.Errorf("error %q does not name the version mismatch", err)
	}
	// Wrong kind is a mismatch too.
	if err := Check(h, KindDNSLogs, 2); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("Check across kinds: got %v, want ErrVersionMismatch", err)
	}
}

func TestFormatVersionMismatch(t *testing.T) {
	data, _ := Marshal(Header{Kind: "k", Version: 1}, func(w *Writer) { w.Int(7) })
	// The byte right after the 4-byte magic is the format version uvarint
	// (FormatVersion = 1 encodes as a single byte).
	bumped := append([]byte(nil), data...)
	bumped[4] = FormatVersion + 1
	if _, _, _, err := Open(bumped); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("bumped container version: got %v, want ErrVersionMismatch", err)
	}
}

func TestCorruption(t *testing.T) {
	data, _ := Marshal(Header{Kind: "k", Version: 1}, func(w *Writer) {
		w.String("payload payload payload")
	})
	// Flip a byte inside the payload: checksum must catch it.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-12] ^= 0xff
	if _, _, _, err := Open(flipped); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped payload byte: got %v, want ErrCorrupt", err)
	}
	// Truncation.
	if _, _, _, err := Open(data[:len(data)-6]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated snapshot: got %v, want ErrCorrupt", err)
	}
	// Bad magic.
	if _, _, _, err := Open([]byte("nope")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: got %v, want ErrCorrupt", err)
	}
}
