package snapshot

import (
	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/faults"
	"clientmap/internal/health"
	"clientmap/internal/metrics"
)

// Incremental artifacts of the shard/scatter/gather pipeline.
//
// A probing pass no longer checkpoints the cumulative campaign: it
// persists a PassDelta — the pass's own evidence plus the artifact hash
// of the upstream checkpoint it applies to — so per-pass checkpoint size
// tracks the pass, not the campaign length. Shard runners persist
// ShardResults, which the gather stage folds into the pass's delta.

// EncodePassDelta appends one pass's incremental evidence.
func EncodePassDelta(w *Writer, d *cacheprobe.PassDelta) {
	w.String(d.Base)
	w.Int(d.Pass)
	w.Int(d.Passes)
	w.Time(d.PassTime)
	w.Int(d.ProbesSent)

	w.Int(len(d.Assigned))
	for _, k := range sortedStringKeys(d.Assigned) {
		w.String(k)
		w.Int(d.Assigned[k])
	}

	w.Int(len(d.Hits))
	for i := range d.Hits {
		h := &d.Hits[i]
		w.String(h.Domain)
		EncodePrefix(w, h.QueryScope)
		EncodePrefix(w, h.RespScope)
		w.String(h.PoP)
		w.Time(h.At)
	}

	encodeFaultStats(w, &d.Faults)

	w.Int(len(d.Metrics))
	for _, k := range sortedStringKeys(d.Metrics) {
		w.String(k)
		w.Varint(d.Metrics[k])
	}

	encodeHealthLedger(w, &d.Health)
}

// DecodePassDelta reads a delta written by EncodePassDelta.
func DecodePassDelta(r *Reader) (*cacheprobe.PassDelta, error) {
	d := &cacheprobe.PassDelta{
		Base:       r.String(),
		Pass:       r.Int(),
		Passes:     r.Int(),
		PassTime:   r.Time(),
		ProbesSent: r.Int(),
	}
	if n := r.SliceLen(2); n > 0 {
		d.Assigned = make(map[string]int, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			k := r.String()
			d.Assigned[k] = r.Int()
		}
	}
	if n := r.SliceLen(7); n > 0 {
		d.Hits = make([]cacheprobe.DeltaHit, n)
		for i := range d.Hits {
			d.Hits[i] = cacheprobe.DeltaHit{
				Domain:     r.String(),
				QueryScope: DecodePrefix(r),
				RespScope:  DecodePrefix(r),
				PoP:        r.String(),
				At:         r.Time(),
			}
		}
	}
	decodeFaultStats(r, &d.Faults)
	d.Metrics = metrics.Ledger{}
	if n := r.Int(); n > 0 {
		for i := 0; i < n && r.Err() == nil; i++ {
			k := r.String()
			d.Metrics[k] = r.Varint()
		}
	}
	decodeHealthLedger(r, &d.Health)
	return d, r.Err()
}

func encodeFaultStats(w *Writer, f *cacheprobe.FaultStats) {
	w.Varint(f.InjectedDrops)
	w.Varint(f.OutageDrops)
	w.Varint(f.Truncations)
	w.Varint(f.Duplicates)
	w.Varint(f.BrownoutDrops)
	w.Varint(f.FlapDrops)
	w.Varint(f.RetriesSpent)
	w.Varint(f.RetriesRecovered)
	w.Varint(f.BudgetExhausted)
}

func decodeFaultStats(r *Reader, f *cacheprobe.FaultStats) {
	f.InjectedDrops = r.Varint()
	f.OutageDrops = r.Varint()
	f.Truncations = r.Varint()
	f.Duplicates = r.Varint()
	f.BrownoutDrops = r.Varint()
	f.FlapDrops = r.Varint()
	f.RetriesSpent = r.Varint()
	f.RetriesRecovered = r.Varint()
	f.BudgetExhausted = r.Varint()
}

// EncodeShardResult appends one shard's execution output. Hit-dependent
// fields (response scope, hit time) are written only for hits.
func EncodeShardResult(w *Writer, s *cacheprobe.ShardResult) {
	w.Int(s.Pass)
	w.Int(len(s.Units))
	for _, u := range s.Units {
		w.Int(u.PoPIndex)
		w.String(u.PoP)
		w.Int(u.Lo)
		w.Int(u.Hi)
	}
	w.Int(len(s.Tasks))
	for i := range s.Tasks {
		t := &s.Tasks[i]
		w.Int(t.PoPIndex)
		w.Int(t.TaskIndex)
		w.Bool(t.Hit)
		if t.Hit {
			EncodePrefix(w, t.RespScope)
			w.Time(t.At)
		}
		w.Int(t.Probes)
		w.Int(t.RetrySpent)
		w.Int(t.RetryRecovered)
		w.Int(t.RetryExhausted)
		w.Int(t.HedgeFired)
		w.Int(t.HedgeWon)
	}

	w.Varint(s.Faults.Drops)
	w.Varint(s.Faults.OutageDrops)
	w.Varint(s.Faults.Truncations)
	w.Varint(s.Faults.Duplicates)
	w.Varint(s.Faults.BrownoutDrops)
	w.Varint(s.Faults.FlapDrops)

	w.Int(len(s.Metrics))
	for _, k := range sortedStringKeys(s.Metrics) {
		w.String(k)
		w.Varint(s.Metrics[k])
	}

	w.Int(len(s.Windows))
	for _, target := range sortedStringKeys(s.Windows) {
		w.String(target)
		sums := s.Windows[target]
		w.Int(len(sums))
		for _, sum := range sums {
			w.Varint(sum.Index)
			w.Varint(sum.OK)
			w.Varint(sum.Fail)
		}
	}
}

// DecodeShardResult reads a shard result written by EncodeShardResult.
func DecodeShardResult(r *Reader) (*cacheprobe.ShardResult, error) {
	s := &cacheprobe.ShardResult{Pass: r.Int()}
	if n := r.SliceLen(4); n > 0 {
		s.Units = make([]cacheprobe.ShardUnit, n)
		for i := range s.Units {
			s.Units[i] = cacheprobe.ShardUnit{
				PoPIndex: r.Int(),
				PoP:      r.String(),
				Lo:       r.Int(),
				Hi:       r.Int(),
			}
		}
	}
	if n := r.SliceLen(9); n > 0 {
		s.Tasks = make([]cacheprobe.ShardTaskResult, n)
		for i := range s.Tasks {
			t := &s.Tasks[i]
			t.PoPIndex = r.Int()
			t.TaskIndex = r.Int()
			t.Hit = r.Bool()
			if t.Hit {
				t.RespScope = DecodePrefix(r)
				t.At = r.Time()
			}
			t.Probes = r.Int()
			t.RetrySpent = r.Int()
			t.RetryRecovered = r.Int()
			t.RetryExhausted = r.Int()
			t.HedgeFired = r.Int()
			t.HedgeWon = r.Int()
		}
	}
	s.Faults = faults.Stats{
		Drops:         r.Varint(),
		OutageDrops:   r.Varint(),
		Truncations:   r.Varint(),
		Duplicates:    r.Varint(),
		BrownoutDrops: r.Varint(),
		FlapDrops:     r.Varint(),
	}
	s.Metrics = metrics.Ledger{}
	if n := r.Int(); n > 0 {
		for i := 0; i < n && r.Err() == nil; i++ {
			k := r.String()
			s.Metrics[k] = r.Varint()
		}
	}
	if n := r.SliceLen(2); n > 0 {
		s.Windows = make(map[string][]health.WindowSum, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			target := r.String()
			sums := make([]health.WindowSum, r.SliceLen(3))
			for j := range sums {
				sums[j] = health.WindowSum{Index: r.Varint(), OK: r.Varint(), Fail: r.Varint()}
			}
			s.Windows[target] = sums
		}
	}
	return s, r.Err()
}
