// Package snapshot is the compact, versioned codec the staged pipeline
// persists its intermediate artifacts with (see internal/pipeline). A
// snapshot file is:
//
//	magic "CMSP" | format version (uvarint) | kind (string)
//	| artifact version (uvarint) | fingerprint (string)
//	| payload length (uvarint) | payload | fnv64a(payload)
//
// The header carries everything the pipeline needs to decide whether the
// artifact is reusable — what it is (kind), which encoding it uses
// (artifact version), and which inputs produced it (fingerprint) —
// without decoding the payload. Any version disagreement surfaces as a
// clear ErrVersionMismatch instead of garbage decode output.
//
// Payload primitives are varint-based and every artifact encoder walks
// its maps in sorted key order, so a given value always encodes to the
// same bytes — which is what lets the pipeline chain stage fingerprints
// through artifact content hashes.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"time"
)

// FormatVersion is the container format version this binary reads and
// writes. Bump it when the header or framing changes shape.
const FormatVersion = 1

var magic = [4]byte{'C', 'M', 'S', 'P'}

// ErrVersionMismatch reports a snapshot written by a different format or
// artifact version than this binary understands.
var ErrVersionMismatch = errors.New("snapshot version mismatch")

// ErrCorrupt reports a truncated or checksum-failing snapshot.
var ErrCorrupt = errors.New("snapshot corrupt")

// Header identifies a snapshot's artifact.
type Header struct {
	// Kind names the artifact type (e.g. "cacheprobe.Campaign").
	Kind string
	// Version is the artifact encoding version for Kind.
	Version uint16
	// Fingerprint is the producing stage's input fingerprint; the
	// pipeline only reuses a snapshot whose fingerprint matches the
	// fingerprint it recomputed from the current configuration.
	Fingerprint string
}

// Writer accumulates a payload. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a signed varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Float64 appends the IEEE-754 bits of v.
func (w *Writer) Float64(v float64) { w.Uvarint(math.Float64bits(v)) }

// Bool appends a boolean.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Time appends t as Unix nanoseconds. Decoding restores the instant in
// UTC, so only encode UTC-based times (all simulated times are).
func (w *Writer) Time(t time.Time) { w.Varint(t.UnixNano()) }

// Reader consumes a payload with a sticky error: after the first
// malformed read every subsequent read returns zero values, and Err
// reports what went wrong.
type Reader struct {
	buf []byte
	off int
	err error
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated or malformed %s at offset %d", ErrCorrupt, what, r.off)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Float64 reads an IEEE-754 value.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uvarint()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("bool")
		return false
	}
	b := r.buf[r.off]
	r.off++
	return b != 0
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)-r.off) < n {
		r.fail("string")
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Time reads an instant written by Writer.Time, in UTC.
func (r *Reader) Time() time.Time { return time.Unix(0, r.Varint()).UTC() }

// SliceLen reads a count prefixing a sequence whose elements each
// occupy at least minBytes of encoded payload, and bounds it against
// what actually remains. The checksum only proves the payload matches
// what was written, not that what was written is sane: a forged payload
// can claim a billion-element slice in three bytes, and a decoder that
// pre-allocates make([]T, n) from it dies on the spot. Negative counts
// and counts that cannot fit in the remaining bytes fail the reader
// with ErrCorrupt and return 0.
func (r *Reader) SliceLen(minBytes int) int {
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n < 0 || n > (len(r.buf)-r.off)/minBytes {
		r.fail("sequence count")
		return 0
	}
	return n
}

// fnv64a is the payload checksum.
func fnv64a(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Marshal frames a payload produced by enc under the given header and
// returns the snapshot file bytes plus the payload's content hash (the
// value pipeline fingerprints chain on).
func Marshal(h Header, enc func(*Writer)) (data []byte, payloadHash string) {
	var pw Writer
	enc(&pw)
	payload := pw.buf

	var w Writer
	w.buf = append(w.buf, magic[:]...)
	w.Uvarint(FormatVersion)
	w.String(h.Kind)
	w.Uvarint(uint64(h.Version))
	w.String(h.Fingerprint)
	w.Uvarint(uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	w.Uvarint(fnv64a(payload))
	return w.buf, HashBytes(payload)
}

// Open parses a snapshot file, verifies the container format and
// checksum, and returns the header, a Reader positioned at the payload,
// and the payload's content hash.
func Open(data []byte) (Header, *Reader, string, error) {
	r := &Reader{buf: data}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return Header{}, nil, "", fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r.off = len(magic)
	format := r.Uvarint()
	if r.err == nil && format != FormatVersion {
		return Header{}, nil, "", fmt.Errorf("%w: file format v%d, this binary reads v%d",
			ErrVersionMismatch, format, FormatVersion)
	}
	h := Header{Kind: r.String()}
	h.Version = uint16(r.Uvarint())
	h.Fingerprint = r.String()
	plen := r.Uvarint()
	if r.err != nil {
		return Header{}, nil, "", r.err
	}
	if uint64(len(r.buf)-r.off) < plen {
		return Header{}, nil, "", fmt.Errorf("%w: payload truncated", ErrCorrupt)
	}
	payload := r.buf[r.off : r.off+int(plen)]
	sumReader := &Reader{buf: r.buf, off: r.off + int(plen)}
	sum := sumReader.Uvarint()
	if sumReader.err != nil {
		return Header{}, nil, "", sumReader.err
	}
	if sum != fnv64a(payload) {
		return Header{}, nil, "", fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	return h, &Reader{buf: payload}, HashBytes(payload), nil
}

// Check verifies that a parsed header carries the artifact the caller
// expects. Version disagreement is an ErrVersionMismatch with both sides
// spelled out — the contract the pipeline and its tests rely on.
func Check(h Header, kind string, version uint16) error {
	if h.Kind != kind {
		return fmt.Errorf("%w: snapshot holds %q, want %q", ErrVersionMismatch, h.Kind, kind)
	}
	if h.Version != version {
		return fmt.Errorf("%w: %s snapshot is v%d, this binary reads v%d",
			ErrVersionMismatch, kind, h.Version, version)
	}
	return nil
}

// HashBytes returns the hex SHA-256 of b.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
