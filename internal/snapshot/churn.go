package snapshot

import (
	"clientmap/internal/churn"
	"clientmap/internal/netx"
)

// Codec for churn events. The streaming mode re-derives the churn plan
// from (seed, spec, world) on every run, but each hour checkpoint also
// carries the events it applied: on restore the stream verifies the
// decoded events against the re-derived plan, so a checkpoint written
// under a different plan derivation (a changed redraw formula, a stale
// binary) fails loudly instead of silently rebuilding a different world.

// KindStreamDelta is the artifact kind of one streaming hour's
// checkpoint (churn events + probe delta + DNS observations).
const KindStreamDelta = "stream.HourDelta"

// VersionStreamDelta is the hour-checkpoint encoding version.
const VersionStreamDelta uint16 = 1

// EncodeChurnEvent appends one churn event to w.
func EncodeChurnEvent(w *Writer, e churn.Event) {
	w.Int(e.Hour)
	w.Uvarint(uint64(e.Kind))
	w.Int(e.Tick)
	w.Uvarint(uint64(e.Prefix))
	w.Uvarint(uint64(e.NewASN))
	w.Varint(int64(e.NewASIdx))
	w.Float64(float64(e.NewUsers))
	w.Float64(float64(e.NewActivity))
	w.Float64(float64(e.NewDiurnality))
	w.Varint(int64(e.NewResolverIdx))
	w.Float64(e.Sigma)
	w.Float64(e.Delta)
	w.String(e.PoP)
}

// DecodeChurnEvent reads one churn event written by EncodeChurnEvent.
func DecodeChurnEvent(r *Reader) churn.Event {
	return churn.Event{
		Hour:           r.Int(),
		Kind:           churn.Kind(r.Uvarint()),
		Tick:           r.Int(),
		Prefix:         netx.Slash24(r.Uvarint()),
		NewASN:         uint32(r.Uvarint()),
		NewASIdx:       int32(r.Varint()),
		NewUsers:       float32(r.Float64()),
		NewActivity:    float32(r.Float64()),
		NewDiurnality:  float32(r.Float64()),
		NewResolverIdx: int32(r.Varint()),
		Sigma:          r.Float64(),
		Delta:          r.Float64(),
		PoP:            r.String(),
	}
}

// EncodeChurnEvents appends a churn event list to w.
func EncodeChurnEvents(w *Writer, evs []churn.Event) {
	w.Int(len(evs))
	for _, e := range evs {
		EncodeChurnEvent(w, e)
	}
}

// DecodeChurnEvents reads an event list written by EncodeChurnEvents.
func DecodeChurnEvents(r *Reader) ([]churn.Event, error) {
	// Every event encodes to at least 8 bytes, so SliceLen bounds both
	// the preallocation and the append loop against the payload that is
	// actually there — a forged count can neither demand gigabytes up
	// front nor grow them one zero event at a time.
	n := r.SliceLen(8)
	if r.Err() != nil {
		return nil, r.Err()
	}
	var out []churn.Event
	if n > 0 {
		out = make([]churn.Event, 0, n)
	}
	for i := 0; i < n; i++ {
		out = append(out, DecodeChurnEvent(r))
	}
	return out, r.Err()
}
