package snapshot

import (
	"sort"
	"time"

	"clientmap/internal/apnic"
	"clientmap/internal/asdb"
	"clientmap/internal/cdn"
	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/core/datasets"
	"clientmap/internal/core/dnslogs"
	"clientmap/internal/health"
	"clientmap/internal/netx"
	"clientmap/internal/world"
)

// Artifact kinds and their encoding versions. Bump a version whenever the
// corresponding encode/decode pair changes shape; stale snapshots then
// fail with ErrVersionMismatch instead of decoding garbage.
const (
	KindCampaign      = "cacheprobe.Campaign"
	KindCampaignDelta = "cacheprobe.PassDelta"
	KindShardResult   = "cacheprobe.ShardResult"
	KindDNSLogs       = "dnslogs.Result"
	KindCDN           = "cdn.Datasets"
	KindAPNIC         = "apnic.Estimates"
	KindASDB          = "asdb.DB"
	KindPrefixDataset = "datasets.PrefixDataset"
	KindASDataset     = "datasets.ASDataset"
)

const (
	// VersionCampaign 2: added the FaultStats reliability ledger.
	// VersionCampaign 3: added the metrics instrumentation ledger.
	// VersionCampaign 4: added brownout/flap drops and the health ledger
	// (breaker windows + transitions, hedges, coverage, failovers).
	VersionCampaign uint16 = 4
	// VersionCampaignDelta and VersionShardResult cover the shard /
	// scatter/gather pipeline's incremental artifacts (see delta.go).
	VersionCampaignDelta uint16 = 1
	VersionShardResult   uint16 = 1
	// VersionDNSLogs 2: added the OpenRetries counter.
	VersionDNSLogs       uint16 = 2
	VersionCDN           uint16 = 1
	VersionAPNIC         uint16 = 1
	VersionASDB          uint16 = 1
	VersionPrefixDataset uint16 = 1
	VersionASDataset     uint16 = 1
)

// --- netx helpers ---

// EncodePrefix appends p as (addr, bits).
func EncodePrefix(w *Writer, p netx.Prefix) {
	w.Uvarint(uint64(p.Addr()))
	w.Uvarint(uint64(p.Bits()))
}

// DecodePrefix reads a prefix written by EncodePrefix.
func DecodePrefix(r *Reader) netx.Prefix {
	addr := netx.Addr(r.Uvarint())
	bits := int(r.Uvarint())
	return netx.PrefixFrom(addr, bits)
}

func sortPrefixes(ps []netx.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr() != ps[j].Addr() {
			return ps[i].Addr() < ps[j].Addr()
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}

// EncodeSet24 appends the set as delta-encoded ascending members.
func EncodeSet24(w *Writer, s *netx.Set24) {
	w.Int(s.Len())
	prev := uint64(0)
	s.Range(func(p netx.Slash24) bool {
		w.Uvarint(uint64(p) - prev)
		prev = uint64(p)
		return true
	})
}

// DecodeSet24 reads a set written by EncodeSet24.
func DecodeSet24(r *Reader) *netx.Set24 {
	n := r.SliceLen(1)
	s := &netx.Set24{}
	cur := uint64(0)
	for i := 0; i < n; i++ {
		cur += r.Uvarint()
		s.Add(netx.Slash24(cur))
	}
	return s
}

func sortedStringKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedU32Keys[V any](m map[uint32]V) []uint32 {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedAddrKeys[V any](m map[netx.Addr]V) []netx.Addr {
	keys := make([]netx.Addr, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// --- cacheprobe.Campaign ---

// EncodeCampaign appends the full campaign state — the artifact every
// probing-chain checkpoint (pre-scan, calibration, each pass) persists.
func EncodeCampaign(w *Writer, c *cacheprobe.Campaign) {
	w.Int(c.Passes)
	w.Int(c.ProbesSent)
	w.Int(c.PreScanQueries)

	w.Int(len(c.PassTimes))
	for _, t := range c.PassTimes {
		w.Time(t)
	}

	w.Int(len(c.PoPs))
	for _, pop := range sortedStringKeys(c.PoPs) {
		cal := c.PoPs[pop]
		w.String(pop)
		w.String(cal.PoP)
		w.String(cal.Vantage)
		w.Float64(cal.RadiusKm)
		w.Int(cal.Assigned)
		w.Int(len(cal.HitDistancesKm))
		for _, d := range cal.HitDistancesKm {
			w.Float64(d)
		}
	}

	w.Int(len(c.ScopesByDomain))
	for _, d := range sortedStringKeys(c.ScopesByDomain) {
		w.String(d)
		scopes := c.ScopesByDomain[d]
		w.Int(len(scopes))
		for _, p := range scopes {
			EncodePrefix(w, p)
		}
	}

	w.Int(len(c.Hits))
	for _, d := range sortedStringKeys(c.Hits) {
		w.String(d)
		hits := c.Hits[d]
		scopes := make([]netx.Prefix, 0, len(hits))
		for p := range hits {
			scopes = append(scopes, p)
		}
		sortPrefixes(scopes)
		w.Int(len(scopes))
		for _, p := range scopes {
			h := hits[p]
			EncodePrefix(w, p)
			EncodePrefix(w, h.RespScope)
			EncodePrefix(w, h.QueryScope)
			w.String(h.PoP)
			w.String(h.Domain)
			w.Int(h.Count)
			w.Uvarint(h.PassMask)
			w.Int(len(h.Times))
			for _, t := range h.Times {
				w.Time(t)
			}
		}
	}

	w.Int(len(c.ScopeDiffs))
	for _, d := range sortedStringKeys(c.ScopeDiffs) {
		w.String(d)
		diffs := c.ScopeDiffs[d]
		keys := make([]int, 0, len(diffs))
		for k := range diffs {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		w.Int(len(keys))
		for _, k := range keys {
			w.Int(k)
			w.Int(diffs[k])
		}
	}

	w.Int(len(c.PoPHits))
	for _, pop := range sortedStringKeys(c.PoPHits) {
		w.String(pop)
		w.Int(c.PoPHits[pop])
	}

	w.Varint(c.Faults.InjectedDrops)
	w.Varint(c.Faults.OutageDrops)
	w.Varint(c.Faults.Truncations)
	w.Varint(c.Faults.Duplicates)
	w.Varint(c.Faults.BrownoutDrops)
	w.Varint(c.Faults.FlapDrops)
	w.Varint(c.Faults.RetriesSpent)
	w.Varint(c.Faults.RetriesRecovered)
	w.Varint(c.Faults.BudgetExhausted)

	w.Int(len(c.Metrics))
	for _, k := range sortedStringKeys(c.Metrics) {
		w.String(k)
		w.Varint(c.Metrics[k])
	}

	encodeHealthLedger(w, &c.Health)
}

// encodeHealthLedger appends the campaign's degradation-layer state: the
// breaker's replayable windows, the transition timeline, and the hedge /
// coverage accounting. Map iteration is canonicalised by sorted keys.
func encodeHealthLedger(w *Writer, l *health.Ledger) {
	w.Int(len(l.Windows))
	for _, target := range sortedStringKeys(l.Windows) {
		w.String(target)
		sums := l.Windows[target]
		w.Int(len(sums))
		for _, s := range sums {
			w.Varint(s.Index)
			w.Varint(s.OK)
			w.Varint(s.Fail)
		}
	}
	w.Int(len(l.Transitions))
	for _, tr := range l.Transitions {
		w.String(tr.Target)
		w.Time(tr.At)
		w.Uvarint(uint64(tr.From))
		w.Uvarint(uint64(tr.To))
	}
	w.Varint(l.HedgesFired)
	w.Varint(l.HedgesWon)
	w.Int(len(l.Coverage))
	for _, c := range l.Coverage {
		w.Int(c.Pass)
		w.Varint(c.Assigned)
		w.Varint(c.Primary)
		w.Varint(c.Trial)
		w.Varint(c.Alternate)
		w.Varint(c.Fallback)
		w.Varint(c.Lost)
	}
	w.Int(len(l.FailedOver))
	for _, pop := range sortedStringKeys(l.FailedOver) {
		w.String(pop)
		w.Varint(l.FailedOver[pop])
	}
	w.Int(len(l.LostTasks))
	for _, pop := range sortedStringKeys(l.LostTasks) {
		w.String(pop)
		tasks := l.LostTasks[pop]
		keys := make([]int, 0, len(tasks))
		for ti := range tasks {
			keys = append(keys, ti)
		}
		sort.Ints(keys)
		w.Int(len(keys))
		for _, ti := range keys {
			w.Int(ti)
			w.Int(tasks[ti])
		}
	}
}

// decodeHealthLedger reads a ledger written by encodeHealthLedger. Empty
// collections decode as nil, matching an in-memory campaign that never
// touched them.
func decodeHealthLedger(r *Reader, l *health.Ledger) {
	if n := r.SliceLen(2); n > 0 {
		l.Windows = make(map[string][]health.WindowSum, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			target := r.String()
			sums := make([]health.WindowSum, r.SliceLen(3))
			for j := range sums {
				sums[j] = health.WindowSum{Index: r.Varint(), OK: r.Varint(), Fail: r.Varint()}
			}
			l.Windows[target] = sums
		}
	}
	if n := r.SliceLen(4); n > 0 {
		l.Transitions = make([]health.Transition, n)
		for i := range l.Transitions {
			l.Transitions[i] = health.Transition{
				Target: r.String(),
				At:     r.Time(),
				From:   health.State(r.Uvarint()),
				To:     health.State(r.Uvarint()),
			}
		}
	}
	l.HedgesFired = r.Varint()
	l.HedgesWon = r.Varint()
	if n := r.SliceLen(7); n > 0 {
		l.Coverage = make([]health.PassCoverage, n)
		for i := range l.Coverage {
			l.Coverage[i] = health.PassCoverage{
				Pass:      r.Int(),
				Assigned:  r.Varint(),
				Primary:   r.Varint(),
				Trial:     r.Varint(),
				Alternate: r.Varint(),
				Fallback:  r.Varint(),
				Lost:      r.Varint(),
			}
		}
	}
	if n := r.SliceLen(2); n > 0 {
		l.FailedOver = make(map[string]int64, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			pop := r.String()
			l.FailedOver[pop] = r.Varint()
		}
	}
	if n := r.SliceLen(2); n > 0 {
		l.LostTasks = make(map[string]map[int]int, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			pop := r.String()
			m := r.SliceLen(2)
			tasks := make(map[int]int, m)
			for j := 0; j < m; j++ {
				ti := r.Int()
				tasks[ti] = r.Int()
			}
			l.LostTasks[pop] = tasks
		}
	}
}

// DecodeCampaign reads a campaign written by EncodeCampaign. The decoded
// value is semantically identical to the encoded one: top-level maps are
// always non-nil (as cacheprobe.NewCampaign builds them), nested slices
// and maps are nil when empty.
func DecodeCampaign(r *Reader) (*cacheprobe.Campaign, error) {
	c := cacheprobe.NewCampaign()
	c.Passes = r.Int()
	c.ProbesSent = r.Int()
	c.PreScanQueries = r.Int()

	if n := r.SliceLen(1); n > 0 {
		c.PassTimes = make([]time.Time, n)
		for i := range c.PassTimes {
			c.PassTimes[i] = r.Time()
		}
	}

	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		key := r.String()
		cal := &cacheprobe.PoPCalibration{
			PoP:      r.String(),
			Vantage:  r.String(),
			RadiusKm: r.Float64(),
			Assigned: r.Int(),
		}
		if m := r.SliceLen(1); m > 0 {
			cal.HitDistancesKm = make([]float64, m)
			for j := range cal.HitDistancesKm {
				cal.HitDistancesKm[j] = r.Float64()
			}
		}
		c.PoPs[key] = cal
	}

	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		d := r.String()
		m := r.SliceLen(2)
		var scopes []netx.Prefix
		if m > 0 {
			scopes = make([]netx.Prefix, m)
			for j := range scopes {
				scopes[j] = DecodePrefix(r)
			}
		}
		c.ScopesByDomain[d] = scopes
	}

	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		d := r.String()
		m := r.SliceLen(2)
		hits := make(map[netx.Prefix]*cacheprobe.Hit, m)
		for j := 0; j < m && r.Err() == nil; j++ {
			key := DecodePrefix(r)
			h := &cacheprobe.Hit{
				RespScope:  DecodePrefix(r),
				QueryScope: DecodePrefix(r),
				PoP:        r.String(),
				Domain:     r.String(),
				Count:      r.Int(),
				PassMask:   r.Uvarint(),
			}
			if t := r.SliceLen(1); t > 0 {
				h.Times = make([]time.Time, t)
				for k := range h.Times {
					h.Times[k] = r.Time()
				}
			}
			hits[key] = h
		}
		c.Hits[d] = hits
	}

	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		d := r.String()
		m := r.SliceLen(2)
		diffs := make(map[int]int, m)
		for j := 0; j < m; j++ {
			k := r.Int()
			diffs[k] = r.Int()
		}
		c.ScopeDiffs[d] = diffs
	}

	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		pop := r.String()
		c.PoPHits[pop] = r.Int()
	}

	c.Faults.InjectedDrops = r.Varint()
	c.Faults.OutageDrops = r.Varint()
	c.Faults.Truncations = r.Varint()
	c.Faults.Duplicates = r.Varint()
	c.Faults.BrownoutDrops = r.Varint()
	c.Faults.FlapDrops = r.Varint()
	c.Faults.RetriesSpent = r.Varint()
	c.Faults.RetriesRecovered = r.Varint()
	c.Faults.BudgetExhausted = r.Varint()

	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		k := r.String()
		c.Metrics[k] = r.Varint()
	}

	decodeHealthLedger(r, &c.Health)
	return c, r.Err()
}

// --- dnslogs.Result ---

// EncodeDNSLogs appends the DITL crawl result.
func EncodeDNSLogs(w *Writer, res *dnslogs.Result) {
	w.Int(len(res.ResolverCounts))
	for _, a := range sortedAddrKeys(res.ResolverCounts) {
		w.Uvarint(uint64(a))
		w.Float64(res.ResolverCounts[a])
	}
	w.Float64(res.TotalQueries)
	w.Float64(res.PatternMatches)
	w.Int(res.FilteredNames)
	w.Int(len(res.LettersRead))
	for _, l := range res.LettersRead {
		w.String(l)
	}
	w.Int(res.OpenRetries)
}

// DecodeDNSLogs reads a result written by EncodeDNSLogs.
func DecodeDNSLogs(r *Reader) (*dnslogs.Result, error) {
	res := &dnslogs.Result{ResolverCounts: make(map[netx.Addr]float64)}
	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		a := netx.Addr(r.Uvarint())
		res.ResolverCounts[a] = r.Float64()
	}
	res.TotalQueries = r.Float64()
	res.PatternMatches = r.Float64()
	res.FilteredNames = r.Int()
	if n := r.SliceLen(1); n > 0 {
		res.LettersRead = make([]string, n)
		for i := range res.LettersRead {
			res.LettersRead[i] = r.String()
		}
	}
	res.OpenRetries = r.Int()
	return res, r.Err()
}

// --- cdn.Datasets ---

// EncodeCDN appends the one-day Microsoft-style collections.
func EncodeCDN(w *Writer, d *cdn.Datasets) {
	w.Time(d.Day)

	w.Int(len(d.Clients.Volume))
	prev := uint64(0)
	keys := make([]netx.Slash24, 0, len(d.Clients.Volume))
	for p := range d.Clients.Volume {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, p := range keys {
		w.Uvarint(uint64(p) - prev)
		prev = uint64(p)
		w.Varint(d.Clients.Volume[p])
	}
	w.Varint(d.Clients.Total)

	w.Int(len(d.Resolvers.ClientIPs))
	for _, a := range sortedAddrKeys(d.Resolvers.ClientIPs) {
		w.Uvarint(uint64(a))
		w.Varint(d.Resolvers.ClientIPs[a])
	}
	w.Varint(d.Resolvers.Total)

	w.Int(len(d.ECS.Queries))
	ecsKeys := make([]netx.Prefix, 0, len(d.ECS.Queries))
	for p := range d.ECS.Queries {
		ecsKeys = append(ecsKeys, p)
	}
	sortPrefixes(ecsKeys)
	for _, p := range ecsKeys {
		EncodePrefix(w, p)
		w.Varint(d.ECS.Queries[p])
	}
	w.Varint(d.ECS.Total)
}

// DecodeCDN reads datasets written by EncodeCDN.
func DecodeCDN(r *Reader) (*cdn.Datasets, error) {
	d := &cdn.Datasets{
		Clients:   &cdn.Clients{Volume: make(map[netx.Slash24]int64)},
		Resolvers: &cdn.Resolvers{ClientIPs: make(map[netx.Addr]int64)},
		ECS:       &cdn.ECSPrefixes{Queries: make(map[netx.Prefix]int64)},
	}
	d.Day = r.Time()

	cur := uint64(0)
	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		cur += r.Uvarint()
		d.Clients.Volume[netx.Slash24(cur)] = r.Varint()
	}
	d.Clients.Total = r.Varint()

	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		a := netx.Addr(r.Uvarint())
		d.Resolvers.ClientIPs[a] = r.Varint()
	}
	d.Resolvers.Total = r.Varint()

	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		p := DecodePrefix(r)
		d.ECS.Queries[p] = r.Varint()
	}
	d.ECS.Total = r.Varint()
	return d, r.Err()
}

// --- apnic.Estimates ---

// EncodeAPNIC appends the simulated APNIC user estimates.
func EncodeAPNIC(w *Writer, e *apnic.Estimates) {
	w.Int(len(e.Users))
	for _, asn := range sortedU32Keys(e.Users) {
		w.Uvarint(uint64(asn))
		w.Float64(e.Users[asn])
	}
	w.Int(len(e.Impressions))
	for _, asn := range sortedU32Keys(e.Impressions) {
		w.Uvarint(uint64(asn))
		w.Int(e.Impressions[asn])
	}
	w.Int(len(e.CountryUsers))
	for _, c := range sortedStringKeys(e.CountryUsers) {
		w.String(c)
		w.Float64(e.CountryUsers[c])
	}
}

// DecodeAPNIC reads estimates written by EncodeAPNIC.
func DecodeAPNIC(r *Reader) (*apnic.Estimates, error) {
	e := &apnic.Estimates{
		Users:        make(map[uint32]float64),
		Impressions:  make(map[uint32]int),
		CountryUsers: make(map[string]float64),
	}
	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		asn := uint32(r.Uvarint())
		e.Users[asn] = r.Float64()
	}
	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		asn := uint32(r.Uvarint())
		e.Impressions[asn] = r.Int()
	}
	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		c := r.String()
		e.CountryUsers[c] = r.Float64()
	}
	return e, r.Err()
}

// --- asdb.DB ---

// EncodeASDB appends the AS classification database.
func EncodeASDB(w *Writer, db *asdb.DB) {
	w.Int(db.Len())
	type entry struct {
		asn uint32
		cat world.Category
	}
	entries := make([]entry, 0, db.Len())
	db.Range(func(asn uint32, cat world.Category) bool {
		entries = append(entries, entry{asn, cat})
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].asn < entries[j].asn })
	for _, e := range entries {
		w.Uvarint(uint64(e.asn))
		w.String(string(e.cat))
	}
}

// DecodeASDB reads a database written by EncodeASDB.
func DecodeASDB(r *Reader) (*asdb.DB, error) {
	n := r.SliceLen(2)
	m := make(map[uint32]world.Category, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		asn := uint32(r.Uvarint())
		m[asn] = world.Category(r.String())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return asdb.FromCategories(m), nil
}

// --- datasets ---

// EncodePrefixDataset appends a /24 dataset (set plus optional volume).
func EncodePrefixDataset(w *Writer, d *datasets.PrefixDataset) {
	w.String(d.Name)
	EncodeSet24(w, d.Set)
	w.Int(len(d.Volume))
	keys := make([]netx.Slash24, 0, len(d.Volume))
	for p := range d.Volume {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	prev := uint64(0)
	for _, p := range keys {
		w.Uvarint(uint64(p) - prev)
		prev = uint64(p)
		w.Float64(d.Volume[p])
	}
}

// DecodePrefixDataset reads a dataset written by EncodePrefixDataset.
func DecodePrefixDataset(r *Reader) (*datasets.PrefixDataset, error) {
	d := &datasets.PrefixDataset{Name: r.String()}
	d.Set = DecodeSet24(r)
	if n := r.SliceLen(2); n > 0 {
		d.Volume = make(map[netx.Slash24]float64, n)
		cur := uint64(0)
		for i := 0; i < n && r.Err() == nil; i++ {
			cur += r.Uvarint()
			d.Volume[netx.Slash24(cur)] = r.Float64()
		}
	}
	return d, r.Err()
}

// EncodeASDataset appends an AS dataset.
func EncodeASDataset(w *Writer, d *datasets.ASDataset) {
	w.String(d.Name)
	w.Int(len(d.Volumes))
	for _, asn := range sortedU32Keys(d.Volumes) {
		w.Uvarint(uint64(asn))
		w.Float64(d.Volumes[asn])
	}
}

// DecodeASDataset reads a dataset written by EncodeASDataset.
func DecodeASDataset(r *Reader) (*datasets.ASDataset, error) {
	d := datasets.NewASDataset(r.String())
	for i, n := 0, r.Int(); i < n && r.Err() == nil; i++ {
		asn := uint32(r.Uvarint())
		d.Volumes[asn] = r.Float64()
	}
	return d, r.Err()
}
