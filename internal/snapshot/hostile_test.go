package snapshot

import (
	"errors"
	"testing"
	"time"

	"clientmap/internal/apnic"
	"clientmap/internal/asdb"
	"clientmap/internal/cdn"
	"clientmap/internal/churn"
	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/core/datasets"
	"clientmap/internal/core/dnslogs"
	"clientmap/internal/netx"
	"clientmap/internal/world"
)

// hostileKind registers one artifact codec for the adversarial sweeps:
// a representative non-trivial sample and the decoder that must survive
// anything the container layer lets through.
type hostileKind struct {
	kind    string
	version uint16
	enc     func(*Writer)
	dec     func(*Reader) error
}

func hostileKinds() []hostileKind {
	camp := cacheprobe.NewCampaign()
	camp.Passes, camp.ProbesSent = 3, 4242
	camp.PassTimes = []time.Time{ts(0), ts(3600)}
	camp.PoPs["fra"] = &cacheprobe.PoPCalibration{
		PoP: "fra", Vantage: "aws:eu-central-1", RadiusKm: 900,
		HitDistancesKm: []float64{10, 20}, Assigned: 7,
	}
	camp.ScopesByDomain["example.com"] = []netx.Prefix{pfx(0x01020300, 24)}
	camp.Hits["example.com"] = map[netx.Prefix]*cacheprobe.Hit{
		pfx(0x01020300, 24): {
			RespScope: pfx(0x01020300, 24), QueryScope: pfx(0x01020000, 16),
			PoP: "fra", Domain: "example.com", Count: 2, PassMask: 0b11,
			Times: []time.Time{ts(60)},
		},
	}
	camp.PoPHits["fra"] = 2
	camp.Metrics["cacheprobe/probe/probes"] = 4242

	delta := &cacheprobe.PassDelta{
		Base: "aaaa1111", Pass: 1, Passes: 4, PassTime: ts(7200), ProbesSent: 99,
		Assigned: map[string]int{"fra": 3},
		Hits: []cacheprobe.DeltaHit{{
			Domain: "example.com", QueryScope: pfx(0x01020000, 16),
			RespScope: pfx(0x01020300, 24), PoP: "fra", At: ts(7300),
		}},
	}

	shard := &cacheprobe.ShardResult{
		Pass:  2,
		Units: []cacheprobe.ShardUnit{{PoPIndex: 0, PoP: "fra", Lo: 0, Hi: 4}},
		Tasks: []cacheprobe.ShardTaskResult{{
			PoPIndex: 0, TaskIndex: 3, Hit: true,
			RespScope: pfx(0x01020300, 24), At: ts(100), Probes: 2,
		}},
	}

	logs := &dnslogs.Result{
		ResolverCounts: map[netx.Addr]float64{0x08080808: 12.5},
		TotalQueries:   1e5, PatternMatches: 42, FilteredNames: 3,
		LettersRead: []string{"J", "K"},
	}

	day := ts(86400)
	cdnData := &cdn.Datasets{
		Day:       day,
		Clients:   &cdn.Clients{Volume: map[netx.Slash24]int64{0x010203: 9}},
		Resolvers: &cdn.Resolvers{ClientIPs: map[netx.Addr]int64{0x08080808: 4}},
		ECS:       &cdn.ECSPrefixes{Queries: map[netx.Prefix]int64{pfx(0x01020000, 16): 2}},
	}

	apnicData := &apnic.Estimates{
		Users:        map[uint32]float64{64500: 1000},
		Impressions:  map[uint32]int{64500: 50},
		CountryUsers: map[string]float64{"de": 1e6},
	}

	asdbData := asdb.FromCategories(map[uint32]world.Category{64500: world.CategoryISP})

	set := &netx.Set24{}
	set.Add(netx.Slash24(0x010203))
	pds := &datasets.PrefixDataset{Name: "sweep", Set: set,
		Volume: map[netx.Slash24]float64{0x010203: 1.5}}
	ads := &datasets.ASDataset{Name: "sweep-as", Volumes: map[uint32]float64{64500: 2}}

	events := []churn.Event{{Hour: 3, Kind: 1, Tick: 7, Prefix: 0x010203, NewASN: 64500}}

	return []hostileKind{
		{KindCampaign, VersionCampaign,
			func(w *Writer) { EncodeCampaign(w, camp) },
			func(r *Reader) error { _, err := DecodeCampaign(r); return err }},
		{KindCampaignDelta, VersionCampaignDelta,
			func(w *Writer) { EncodePassDelta(w, delta) },
			func(r *Reader) error { _, err := DecodePassDelta(r); return err }},
		{KindShardResult, VersionShardResult,
			func(w *Writer) { EncodeShardResult(w, shard) },
			func(r *Reader) error { _, err := DecodeShardResult(r); return err }},
		{KindDNSLogs, VersionDNSLogs,
			func(w *Writer) { EncodeDNSLogs(w, logs) },
			func(r *Reader) error { _, err := DecodeDNSLogs(r); return err }},
		{KindCDN, VersionCDN,
			func(w *Writer) { EncodeCDN(w, cdnData) },
			func(r *Reader) error { _, err := DecodeCDN(r); return err }},
		{KindAPNIC, VersionAPNIC,
			func(w *Writer) { EncodeAPNIC(w, apnicData) },
			func(r *Reader) error { _, err := DecodeAPNIC(r); return err }},
		{KindASDB, VersionASDB,
			func(w *Writer) { EncodeASDB(w, asdbData) },
			func(r *Reader) error { _, err := DecodeASDB(r); return err }},
		{KindPrefixDataset, VersionPrefixDataset,
			func(w *Writer) { EncodePrefixDataset(w, pds) },
			func(r *Reader) error { _, err := DecodePrefixDataset(r); return err }},
		{KindASDataset, VersionASDataset,
			func(w *Writer) { EncodeASDataset(w, ads) },
			func(r *Reader) error { _, err := DecodeASDataset(r); return err }},
		{KindStreamDelta, VersionStreamDelta,
			func(w *Writer) { EncodeChurnEvents(w, events) },
			func(r *Reader) error { _, err := DecodeChurnEvents(r); return err }},
	}
}

// knownError says an error is one of the two sentinels hostile input is
// allowed to surface as.
func knownError(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersionMismatch)
}

// openAndDecode runs the full read path on mutated bytes, converting a
// panic into a test failure that names the mutation.
func openAndDecode(t *testing.T, k hostileKind, data []byte, what string) (decoded bool, payloadHash string) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("%s %s: decoder panicked: %v", k.kind, what, p)
		}
	}()
	h, r, hash, err := Open(data)
	if err != nil {
		if !knownError(err) {
			t.Errorf("%s %s: Open error is neither ErrCorrupt nor ErrVersionMismatch: %v", k.kind, what, err)
		}
		return false, ""
	}
	if err := Check(h, k.kind, k.version); err != nil {
		if !errors.Is(err, ErrVersionMismatch) {
			t.Errorf("%s %s: Check error: %v", k.kind, what, err)
		}
		return false, ""
	}
	if err := k.dec(r); err != nil {
		if !knownError(err) {
			t.Errorf("%s %s: decode error is not a sentinel: %v", k.kind, what, err)
		}
		return false, ""
	}
	return true, hash
}

// TestHostileTruncation feeds every prefix of every kind's encoding to
// the full read path: each must fail with a sentinel error, never panic,
// never decode.
func TestHostileTruncation(t *testing.T) {
	for _, k := range hostileKinds() {
		data, _ := Marshal(Header{Kind: k.kind, Version: k.version, Fingerprint: "fp"}, k.enc)
		for i := 0; i < len(data); i++ {
			if ok, _ := openAndDecode(t, k, data[:i], "truncated"); ok {
				t.Errorf("%s: truncation to %d/%d bytes decoded successfully", k.kind, i, len(data))
			}
		}
	}
}

// TestHostileBitFlip flips one byte at every offset of every kind's
// encoding. Each mutation must either fail with a sentinel error or —
// when the flip landed in header territory the checksum does not cover,
// like the fingerprint — decode the original, unaltered payload.
func TestHostileBitFlip(t *testing.T) {
	for _, k := range hostileKinds() {
		data, origHash := Marshal(Header{Kind: k.kind, Version: k.version, Fingerprint: "fp"}, k.enc)
		for i := 0; i < len(data); i++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 0x42
			ok, hash := openAndDecode(t, k, mut, "bit-flipped")
			if ok && hash != origHash {
				t.Errorf("%s: flip at offset %d/%d decoded an ALTERED payload (hash %.12s != %.12s)",
					k.kind, i, len(data), hash, origHash)
			}
		}
	}
}

// FuzzSnapshotDecode drives arbitrary bytes through Open and, when the
// container parses, through the kind's registered decoder. The invariant
// under fuzzing is purely "no panic, no runaway allocation": every
// rejection must be a sentinel error.
func FuzzSnapshotDecode(f *testing.F) {
	kinds := hostileKinds()
	decoders := make(map[string]func(*Reader) error, len(kinds))
	for _, k := range kinds {
		data, _ := Marshal(Header{Kind: k.kind, Version: k.version, Fingerprint: "fp"}, k.enc)
		f.Add(data)
		decoders[k.kind] = k.dec
	}
	f.Add([]byte("CMSP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, r, _, err := Open(data)
		if err != nil {
			if !knownError(err) {
				t.Fatalf("Open error is not a sentinel: %v", err)
			}
			return
		}
		if dec, ok := decoders[h.Kind]; ok {
			if err := dec(r); err != nil && !knownError(err) {
				t.Fatalf("%s decode error is not a sentinel: %v", h.Kind, err)
			}
		}
	})
}
