package world

import (
	"math"
	"testing"

	"clientmap/internal/geo"
	"clientmap/internal/netx"
	"clientmap/internal/randx"
)

func tinyWorld(t testing.TB, seed randx.Seed) *World {
	t.Helper()
	cfg := Config{Seed: seed, Scale: ScaleTiny, Params: DefaultParams()}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateDeterministic(t *testing.T) {
	a := tinyWorld(t, 7)
	b := tinyWorld(t, 7)
	if len(a.ASes) != len(b.ASes) || len(a.Prefixes) != len(b.Prefixes) || len(a.Resolvers) != len(b.Resolvers) {
		t.Fatalf("sizes differ: %d/%d ASes, %d/%d prefixes, %d/%d resolvers",
			len(a.ASes), len(b.ASes), len(a.Prefixes), len(b.Prefixes), len(a.Resolvers), len(b.Resolvers))
	}
	for i := range a.Prefixes {
		pa, pb := a.Prefixes[i], b.Prefixes[i]
		if pa.P != pb.P || pa.Users != pb.Users || pa.ASIdx != pb.ASIdx {
			t.Fatalf("prefix %d differs: %+v vs %+v", i, pa, pb)
		}
	}
	for i := range a.ASes {
		if a.ASes[i].ASN != b.ASes[i].ASN || a.ASes[i].Users != b.ASes[i].Users {
			t.Fatalf("AS %d differs", i)
		}
	}
}

func TestGenerateSeedSensitive(t *testing.T) {
	a := tinyWorld(t, 1)
	b := tinyWorld(t, 2)
	if len(a.Prefixes) == len(b.Prefixes) && len(a.ASes) == len(b.ASes) {
		same := true
		for i := range a.Prefixes {
			if a.Prefixes[i].P != b.Prefixes[i].P {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical prefix allocations")
		}
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestWorldInvariants(t *testing.T) {
	w := tinyWorld(t, 42)

	if len(w.ASes) < ScaleTiny.NumASes/2 {
		t.Errorf("only %d ASes generated", len(w.ASes))
	}
	if len(w.Prefixes) == 0 || len(w.Resolvers) == 0 {
		t.Fatalf("empty world: %d prefixes, %d resolvers", len(w.Prefixes), len(w.Resolvers))
	}

	// Every AS's prefix range is consistent and all its /24s map back.
	seen := make(map[netx.Slash24]bool)
	for i, as := range w.ASes {
		if as.PrefixHi < as.PrefixLo {
			t.Fatalf("AS %d inverted prefix range", i)
		}
		if int(as.PrefixHi-as.PrefixLo) != as.NumSlash24s() {
			t.Errorf("AS %d: range %d != announced %d", i, as.PrefixHi-as.PrefixLo, as.NumSlash24s())
		}
		for j := as.PrefixLo; j < as.PrefixHi; j++ {
			pi := w.Prefixes[j]
			if pi.ASIdx != int32(i) {
				t.Fatalf("prefix %v has ASIdx %d, want %d", pi.P, pi.ASIdx, i)
			}
			if seen[pi.P] {
				t.Fatalf("prefix %v allocated twice", pi.P)
			}
			seen[pi.P] = true
			// LPM over announcements agrees.
			as2, ok := w.ASOf(pi.P.Addr())
			if !ok || as2.ASN != as.ASN {
				t.Fatalf("announcement lookup for %v failed", pi.P)
			}
		}
		if as.GoogleDNSShare < 0.02 || as.GoogleDNSShare > 0.9 {
			t.Errorf("AS %d google share %v out of bounds", i, as.GoogleDNSShare)
		}
	}
}

func TestBlocksDontOverlap(t *testing.T) {
	w := tinyWorld(t, 3)
	var blocks []netx.Prefix
	for _, as := range w.ASes {
		blocks = append(blocks, as.Blocks...)
	}
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			if blocks[i].Overlaps(blocks[j]) {
				t.Fatalf("blocks %v and %v overlap", blocks[i], blocks[j])
			}
		}
	}
}

func TestUsersDistribution(t *testing.T) {
	w := tinyWorld(t, 42)

	// World total users roughly matches the scale target.
	want := float64(len(w.Prefixes)) * ScaleTiny.UsersPerSlash24
	got := w.TotalUsers()
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("total users %v, want ~%v", got, want)
	}

	// Per-AS users equal the sum over its prefixes (within float32 slack).
	for i, as := range w.ASes {
		var sum float64
		active := 0
		for j := as.PrefixLo; j < as.PrefixHi; j++ {
			sum += float64(w.Prefixes[j].Users)
			if w.Prefixes[j].HasClients() {
				active++
			}
		}
		// The 0.05-user per-prefix floor distorts micro ASes; check the
		// invariant where it is negligible.
		if as.Users > 20 && math.Abs(sum-as.Users)/as.Users > 0.05 {
			t.Errorf("AS %d: prefix users sum %v, AS users %v", i, sum, as.Users)
		}
		if as.Users > 0 && active == 0 {
			t.Errorf("AS %d has users but no active prefixes", i)
		}
	}
}

func TestActiveFractionVaries(t *testing.T) {
	// Figure 4 requires wide variation in per-AS active fractions.
	cfg := Config{Seed: 9, Scale: ScaleSmall, Params: DefaultParams()}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, high := 0, 0
	for _, as := range w.ASes {
		n := int(as.PrefixHi - as.PrefixLo)
		if n < 10 {
			continue
		}
		active := 0
		for j := as.PrefixLo; j < as.PrefixHi; j++ {
			if w.Prefixes[j].HasClients() {
				active++
			}
		}
		frac := float64(active) / float64(n)
		if frac < 0.3 {
			low++
		}
		if frac > 0.8 {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("active fractions not spread: %d sparse, %d saturated ASes", low, high)
	}
}

func TestResolversWired(t *testing.T) {
	w := tinyWorld(t, 42)

	withResolver := 0
	rootVisible := 0
	for _, r := range w.Resolvers {
		as := w.ASes[r.ASIdx]
		// Resolver address must be inside one of its AS's blocks.
		inside := false
		for _, b := range as.Blocks {
			if b.Contains(r.Addr) {
				inside = true
			}
		}
		if !inside {
			t.Errorf("resolver %v outside its AS blocks", r.Addr)
		}
		if r.ForwardsToRoots {
			rootVisible++
		}
	}
	for _, as := range w.ASes {
		if len(as.Resolvers) > 0 {
			withResolver++
		}
	}
	if frac := float64(withResolver) / float64(len(w.ASes)); frac < 0.4 || frac > 0.95 {
		t.Errorf("fraction of ASes with resolvers = %v", frac)
	}
	if frac := float64(rootVisible) / float64(len(w.Resolvers)); frac < 0.6 || frac > 0.95 {
		t.Errorf("fraction of root-visible resolvers = %v", frac)
	}

	// Active prefixes in resolver-bearing ASes point at a resolver.
	for _, pi := range w.Prefixes {
		if !pi.HasClients() {
			continue
		}
		as := w.ASes[pi.ASIdx]
		if len(as.Resolvers) > 0 && pi.ResolverIdx < 0 {
			t.Errorf("active prefix %v in resolver-bearing AS has no resolver", pi.P)
		}
		if pi.ResolverIdx >= int32(len(w.Resolvers)) {
			t.Errorf("prefix %v resolver index out of range", pi.P)
		}
	}
}

func TestGeoDBCoversAllPrefixes(t *testing.T) {
	w := tinyWorld(t, 42)
	db := w.GeoDB()
	if db.Len() != len(w.Prefixes) {
		t.Fatalf("geoDB has %d entries, want %d", db.Len(), len(w.Prefixes))
	}
	within := 0
	for _, pi := range w.Prefixes {
		loc, ok := db.Lookup(pi.P)
		if !ok {
			t.Fatalf("no geo entry for %v", pi.P)
		}
		if loc.ErrorKm <= 0 {
			t.Errorf("%v: non-positive error radius", pi.P)
		}
		if geo.DistanceKm(loc.Coord, pi.Coord) <= loc.ErrorKm {
			within++
		}
	}
	// The reported error radius should usually cover the truth.
	if frac := float64(within) / float64(len(w.Prefixes)); frac < 0.85 {
		t.Errorf("only %.0f%% of geo entries within stated error radius", frac*100)
	}
}

func TestPrefixInfoOf(t *testing.T) {
	w := tinyWorld(t, 42)
	pi, ok := w.PrefixInfoOf(w.Prefixes[0].P)
	if !ok || pi.P != w.Prefixes[0].P {
		t.Fatal("PrefixInfoOf failed for allocated prefix")
	}
	if _, ok := w.PrefixInfoOf(netx.Slash24(10)); ok {
		t.Error("PrefixInfoOf succeeded for unallocated prefix")
	}
}

func TestCategoryMixRoughlyMatchesShares(t *testing.T) {
	cfg := Config{Seed: 5, Scale: ScaleSmall, Params: DefaultParams()}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Category]int{}
	for _, as := range w.ASes {
		counts[as.Category]++
	}
	n := float64(len(w.ASes))
	for cat, share := range categoryShare {
		got := float64(counts[cat]) / n
		if math.Abs(got-share) > 0.08 {
			t.Errorf("category %s share %.2f, want ~%.2f", cat, got, share)
		}
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := Config{Seed: 1, Scale: ScaleSmall, Params: DefaultParams()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
