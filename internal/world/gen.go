package world

import (
	"math"
	"sort"

	"clientmap/internal/geo"
	"clientmap/internal/netx"
	"clientmap/internal/randx"
)

// categoryShare is the sampling distribution of AS categories, shaped after
// ASdb's breakdown in the paper's §4 (ISPs dominate, then hosting/cloud,
// enterprises, schools).
var categoryShare = map[Category]float64{
	CategoryISP:        0.38,
	CategoryHosting:    0.18,
	CategoryEnterprise: 0.22,
	CategoryEducation:  0.07,
	CategoryContent:    0.09,
	CategoryGovernment: 0.06,
}

// sizeMult scales how much address space a category announces.
var sizeMult = map[Category]float64{
	CategoryISP:        3.0,
	CategoryHosting:    1.6,
	CategoryEnterprise: 0.35,
	CategoryEducation:  0.7,
	CategoryContent:    1.0,
	CategoryGovernment: 0.4,
}

// userMult scales how many of a country's users a category's ASes absorb.
var userMult = map[Category]float64{
	CategoryISP:        1.0,
	CategoryHosting:    0.01,
	CategoryEnterprise: 0.05,
	CategoryEducation:  0.15,
	CategoryContent:    0.02,
	CategoryGovernment: 0.05,
}

// Generate builds a world from cfg. Generation is deterministic in
// cfg.Seed and roughly O(total /24s).
func Generate(cfg Config) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Params.ResolverProb == nil {
		cfg.Params = DefaultParams()
	}
	w := &World{
		Cfg:      cfg,
		byPrefix: make(map[netx.Slash24]int32),
	}
	g := &generator{w: w, cfg: cfg}
	g.run()
	return w, nil
}

type generator struct {
	w   *World
	cfg Config
	// cursor is the next unallocated /24 index; allocation starts at
	// 1.0.0.0 and leaves gaps to model unrouted public space.
	cursor uint32
}

func (g *generator) run() {
	g.cursor = uint32(netx.MustParseAddr("1.0.0.0").Slash24())
	g.generateGoogleAS()
	g.generateASes()
	g.assignUsers()
	g.placeResolvers()
	g.buildGeoDB()
}

// countries returns the catalog subset this world uses: the full catalog,
// or the MaxCountries largest (the catalog is ordered by users).
func (g *generator) countries() []geo.Country {
	if n := g.cfg.Scale.MaxCountries; n > 0 && n < len(geo.Countries) {
		return geo.Countries[:n]
	}
	return geo.Countries
}

// asCountByCountry splits the target AS count across countries in
// proportion to users^0.75 (big countries have many ASes, but sublinearly).
func (g *generator) asCountByCountry() map[string]int {
	cs := g.countries()
	weights := make([]float64, len(cs))
	var total float64
	for i, c := range cs {
		weights[i] = math.Pow(c.UsersM, 0.75)
		total += weights[i]
	}
	out := make(map[string]int, len(cs))
	for i, c := range cs {
		n := int(math.Round(weights[i] / total * float64(g.cfg.Scale.NumASes)))
		if n < 1 {
			n = 1
		}
		out[c.Code] = n
	}
	return out
}

func (g *generator) sampleCategory(rng *randx.Stream) Category {
	weights := make([]float64, len(Categories))
	for i, c := range Categories {
		weights[i] = categoryShare[c]
	}
	return Categories[rng.WeightedChoice(weights)]
}

// blockSizes carves total24s /24-equivalents into announced blocks with a
// realistic mix of prefix lengths.
func (g *generator) blockSizes(rng *randx.Stream, total24 int) []int {
	var out []int
	for total24 > 0 {
		var bits int
		switch {
		case total24 >= 256 && rng.Bool(0.06):
			bits = 16
		case total24 >= 64 && rng.Bool(0.12):
			bits = 18
		case total24 >= 16 && rng.Bool(0.25):
			bits = 20
		case total24 >= 4 && rng.Bool(0.4):
			bits = 22
		default:
			bits = 24
		}
		n := 1 << (24 - uint(bits))
		out = append(out, n)
		total24 -= n
	}
	return out
}

// allocBlock reserves n contiguous /24s (n a power of two) aligned to its
// size and returns the block prefix. Alignment gaps plus explicit random
// gaps leave unannounced holes in the public space.
func (g *generator) allocBlock(rng *randx.Stream, n int) netx.Prefix {
	// Align to the block size.
	mask := uint32(n - 1)
	if g.cursor&mask != 0 {
		g.cursor = (g.cursor | mask) + 1
	}
	p := netx.Slash24(g.cursor)
	g.cursor += uint32(n)
	// Random inter-block gap: some public space stays unannounced, as in
	// the real Internet (~12M of 15.5M public /24s are routed).
	if rng.Bool(0.2) {
		g.cursor += uint32(rng.Intn(n/2 + 2))
	}
	bits := 24
	for m := n; m > 1; m >>= 1 {
		bits--
	}
	return netx.PrefixFrom(p.Addr(), bits)
}

// generateGoogleAS allocates the world's first /16 to the synthetic
// Google AS (content network, US): its space carries the Public DNS
// egress /24s and some client activity of its own, so resolver-based
// datasets attribute weight to an AS the techniques can also detect.
func (g *generator) generateGoogleAS() {
	rng := g.cfg.Seed.New("world/google")
	us, _ := geo.CountryByCode("US")
	as := &AS{
		ASN:      GoogleASN,
		Country:  "US",
		Category: CategoryContent,
		Coord:    geo.Jitter(rng, us.Center, 400),
	}
	block := g.allocBlock(rng, 256)
	as.Blocks = []netx.Prefix{block}
	as.PrefixLo = 0
	g.w.announcements.Insert(block, 0)
	block.Slash24s(func(s netx.Slash24) bool {
		g.w.byPrefix[s] = int32(len(g.w.Prefixes))
		g.w.Prefixes = append(g.w.Prefixes, PrefixInfo{
			P:           s,
			ASIdx:       0,
			Coord:       geo.Jitter(rng, as.Coord, 500),
			ResolverIdx: -1,
		})
		return true
	})
	as.PrefixHi = int32(len(g.w.Prefixes))
	as.GoogleDNSShare = 0.9 // Google's own clients use Google DNS
	g.w.ASes = append(g.w.ASes, as)
	g.w.googleASIdx = 0
}

func (g *generator) generateASes() {
	counts := g.asCountByCountry()
	rng := g.cfg.Seed.New("world/ases")
	asn := uint32(100)
	for _, country := range g.countries() {
		// Allocations cluster regionally, as RIR delegations do: each
		// country starts at a /16 boundary so no ECS scope (at most /16)
		// straddles two countries. Within a country, eyeball networks are
		// allocated first and the long tail of micro networks afterwards
		// in their own /16-aligned region — mirroring how PI space sits
		// apart from eyeball pools, which is why coarse ECS scopes warmed
		// by eyeball traffic rarely cover micro ASes.
		n := counts[country.Code]
		micro := make([]bool, n)
		for i := range micro {
			micro[i] = rng.Bool(0.45)
		}
		for _, phase := range [2]bool{false, true} {
			g.cursor = (g.cursor + 0xFF) &^ 0xFF
			for i := 0; i < n; i++ {
				if micro[i] != phase {
					continue
				}
				asn += uint32(1 + rng.Intn(5))
				if asn == GoogleASN {
					asn++
				}
				g.generateAS(rng, country, asn, micro[i])
			}
		}
	}
}

// generateAS creates one AS and allocates its address space at the cursor.
func (g *generator) generateAS(rng *randx.Stream, country geo.Country, asn uint32, micro bool) {
	cat := g.sampleCategory(rng)
	as := &AS{
		ASN:      asn,
		Country:  country.Code,
		Category: cat,
		Micro:    micro,
		Coord:    geo.Jitter(rng, country.Center, country.SpreadKm),
	}
	// Heavy-tailed announced size; micro networks announce a few /24s.
	mean := float64(g.cfg.Scale.MeanBlocks24) * sizeMult[cat]
	total24 := int(rng.Pareto(mean*0.35, 1.25))
	if micro {
		total24 = 1 + rng.Intn(4)
	}
	if total24 < 1 {
		total24 = 1
	}
	if lim := g.cfg.Scale.MeanBlocks24 * 240; total24 > lim {
		total24 = lim // cap the tail so one AS cannot swallow the space
	}
	as.PrefixLo = int32(len(g.w.Prefixes))
	for _, sz := range g.blockSizes(rng, total24) {
		block := g.allocBlock(rng, sz)
		as.Blocks = append(as.Blocks, block)
		asIdx := int32(len(g.w.ASes))
		g.w.announcements.Insert(block, asIdx)
		block.Slash24s(func(s netx.Slash24) bool {
			g.w.byPrefix[s] = int32(len(g.w.Prefixes))
			g.w.Prefixes = append(g.w.Prefixes, PrefixInfo{
				P:           s,
				ASIdx:       asIdx,
				Coord:       geo.Jitter(rng, as.Coord, 60),
				ResolverIdx: -1,
			})
			return true
		})
	}
	as.PrefixHi = int32(len(g.w.Prefixes))
	// Google Public DNS share: regional mean with per-AS jitter.
	mean = g.cfg.Params.GoogleDNSShareMean
	if v, ok := g.cfg.Params.GoogleDNSShareByRegion[country.Region]; ok {
		mean = v
	}
	share := mean * rng.LogNormal(0, 0.45)
	if share < 0.02 {
		share = 0.02
	}
	if share > 0.9 {
		share = 0.9
	}
	as.GoogleDNSShare = share
	g.w.ASes = append(g.w.ASes, as)
}

// assignUsers distributes ground-truth users: world total scales with the
// announced /24 count, split to countries by the catalog, to ASes by a
// heavy-tailed weight, and to a per-AS subset of active /24s.
func (g *generator) assignUsers() {
	rng := g.cfg.Seed.New("world/users")
	worldUsers := float64(len(g.w.Prefixes)) * g.cfg.Scale.UsersPerSlash24
	var totalM float64
	for _, c := range g.countries() {
		totalM += c.UsersM
	}

	// Group AS indices by country.
	byCountry := make(map[string][]int32)
	for i, as := range g.w.ASes {
		byCountry[as.Country] = append(byCountry[as.Country], int32(i))
	}

	for _, country := range g.countries() {
		idxs := byCountry[country.Code]
		if len(idxs) == 0 {
			continue
		}
		countryUsers := worldUsers * country.UsersM / totalM
		weights := make([]float64, len(idxs))
		var wsum float64
		for j, idx := range idxs {
			as := g.w.ASes[idx]
			// Heavy-tailed AS popularity × category eyeball factor ×
			// announced size. Nearly half of all real ASes are "micro"
			// networks with a negligible user count — the long tail APNIC
			// never samples and the techniques partially miss.
			weights[j] = rng.Pareto(1, 1.1) * userMult[as.Category] *
				math.Sqrt(float64(as.NumSlash24s()))
			if as.Micro {
				weights[j] *= 0.00012
				// Micro networks stay micro: the Pareto tail must not
				// promote one to an eyeball population.
				if weights[j] > 0.004 {
					weights[j] = 0.004
				}
			}
			wsum += weights[j]
		}
		for j, idx := range idxs {
			as := g.w.ASes[idx]
			as.Users = countryUsers * weights[j] / wsum
			g.populatePrefixes(rng, as)
		}
	}
}

// populatePrefixes picks which of an AS's /24s host clients and spreads the
// AS's users across them. The active fraction is drawn from a wide mixture
// so that Figure 4's spread (some ASes almost empty, some full) emerges.
func (g *generator) populatePrefixes(rng *randx.Stream, as *AS) {
	n := int(as.PrefixHi - as.PrefixLo)
	if n == 0 {
		return
	}
	var frac float64
	switch {
	case rng.Bool(0.18):
		frac = 0.05 + rng.Float64()*0.3 // sparse AS
	case rng.Bool(0.5):
		frac = 0.45 + rng.Float64()*0.45 // middling
	default:
		frac = 0.9 + rng.Float64()*0.1 // saturated
	}
	if as.Category == CategoryHosting {
		frac *= 0.6
	}
	active := int(math.Round(frac * float64(n)))
	// Micro networks cannot populate many prefixes: keep at least ~0.2
	// users per active /24 so the per-prefix activity floor stays honest.
	if lim := int(as.Users / 0.1); active > lim {
		active = lim
	}
	if active < 1 {
		active = 1
	}
	if active > n {
		active = n
	}
	perm := rng.Perm(n)
	chosen := perm[:active]
	sort.Ints(chosen)

	weights := make([]float64, active)
	var wsum float64
	for i := range weights {
		weights[i] = rng.LogNormal(0, 0.7)
		wsum += weights[i]
	}
	for i, off := range chosen {
		pi := &g.w.Prefixes[as.PrefixLo+int32(off)]
		pi.Users = float32(as.Users * weights[i] / wsum)
		if pi.Users < 0.02 {
			pi.Users = 0.02 // an "active" prefix has at least a sliver of activity
		}
		act := rng.LogNormal(0, 0.5)
		diurn := 0.75 + rng.Float64()*0.25
		if as.Category == CategoryHosting {
			// Hosting /24s have few humans but busy machine clients that
			// run around the clock.
			act *= 4
			diurn = 0.05 + rng.Float64()*0.2
		}
		pi.Activity = float32(act)
		pi.Diurnality = float32(diurn)
	}
}

// placeResolvers creates recursive resolvers per AS and wires each active
// /24 to the resolver its clients use for the non-Google query share.
func (g *generator) placeResolvers() {
	rng := g.cfg.Seed.New("world/resolvers")
	params := g.cfg.Params

	// Country-level fallback resolvers (an upstream ISP's) for ASes
	// without their own.
	fallback := make(map[string]int32)

	for i, as := range g.w.ASes {
		prob := params.ResolverProb[as.Category]
		if !rng.Bool(prob) {
			continue
		}
		count := 1
		if as.Users > 0 {
			// Large eyeball networks run several resolvers, so at least
			// one is almost always root-visible.
			count += rng.Poisson(math.Min(as.Users/5e4, 4))
		}
		// Resolvers usually live in the AS's client-populated ranges (the
		// CDN sees their /24s active, which is why the paper finds 95.5%
		// of DNS-logs prefixes among Microsoft clients); a minority sit in
		// infrastructure-only space.
		var active []netx.Slash24
		for j := as.PrefixLo; j < as.PrefixHi; j++ {
			if g.w.Prefixes[j].HasClients() {
				active = append(active, g.w.Prefixes[j].P)
			}
		}
		for r := 0; r < count; r++ {
			if len(as.Blocks) == 0 {
				break
			}
			var home netx.Slash24
			if len(active) > 0 && rng.Bool(0.9) {
				home = active[rng.Intn(len(active))]
			} else {
				block := as.Blocks[rng.Intn(len(as.Blocks))]
				home = netx.Slash24(uint32(block.FirstSlash24()) + uint32(rng.Intn(block.NumSlash24s())))
			}
			addr := home.AddrAt(byte(53 + r))
			ridx := int32(len(g.w.Resolvers))
			g.w.Resolvers = append(g.w.Resolvers, Resolver{
				Addr:            addr,
				ASIdx:           int32(i),
				Kind:            ResolverISP,
				Coord:           as.Coord,
				ForwardsToRoots: rng.Bool(params.RootVisibleProb),
			})
			as.Resolvers = append(as.Resolvers, ridx)
		}
		if _, ok := fallback[as.Country]; !ok && as.Category == CategoryISP && len(as.Resolvers) > 0 {
			fallback[as.Country] = as.Resolvers[0]
		}
	}

	// Wire prefixes to resolvers.
	for i := range g.w.Prefixes {
		pi := &g.w.Prefixes[i]
		if !pi.HasClients() {
			continue
		}
		as := g.w.ASes[pi.ASIdx]
		switch {
		case len(as.Resolvers) > 0:
			pi.ResolverIdx = as.Resolvers[rng.Intn(len(as.Resolvers))]
		default:
			if fb, ok := fallback[as.Country]; ok {
				pi.ResolverIdx = fb
			}
		}
	}
}

// buildGeoDB derives the MaxMind-like database: true locations blurred by a
// sampled error radius, with hosting space occasionally mislocated — the
// paper leans on MaxMind being "accurate enough for the user prefixes of
// interest" while being known-bad for infrastructure.
func (g *generator) buildGeoDB() {
	rng := g.cfg.Seed.New("world/geodb")
	db := geo.NewDB()
	for i := range g.w.Prefixes {
		pi := &g.w.Prefixes[i]
		as := g.w.ASes[pi.ASIdx]
		var errKm float64
		switch {
		case rng.Bool(0.78):
			errKm = 5 + rng.Float64()*45
		case rng.Bool(0.75):
			errKm = 50 + rng.Float64()*250
		default:
			errKm = 300 + rng.Float64()*700
		}
		coord := geo.Jitter(rng, pi.Coord, errKm*0.6)
		country := as.Country
		if as.Category == CategoryHosting && rng.Bool(0.08) {
			// Mislocated infrastructure: report a random other country.
			other := geo.Countries[rng.Intn(len(geo.Countries))]
			coord = geo.Jitter(rng, other.Center, other.SpreadKm)
			country = other.Code
			errKm = 500 + rng.Float64()*500
		}
		db.Set(pi.P, geo.Location{Coord: coord, ErrorKm: errKm, Country: country})
	}
	g.w.geoDB = db
}
