package world

import (
	"testing"
)

func mutateWorld(t *testing.T) *World {
	t.Helper()
	w, err := Generate(Config{Seed: 5, Scale: ScaleTiny, Params: DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// pickPrefixOutsideAS returns an announced /24 not owned by the given AS.
func pickPrefixOutsideAS(t *testing.T, w *World, asIdx int32) *PrefixInfo {
	t.Helper()
	for i := range w.Prefixes {
		if w.Prefixes[i].ASIdx != asIdx {
			return &w.Prefixes[i]
		}
	}
	t.Fatal("no prefix outside AS")
	return nil
}

func TestRealloc(t *testing.T) {
	w := mutateWorld(t)
	pi := pickPrefixOutsideAS(t, w, w.GoogleASIdx())
	oldAS := pi.ASIdx
	newAS := (oldAS + 1) % int32(len(w.ASes))
	if newAS == w.GoogleASIdx() {
		newAS = (newAS + 1) % int32(len(w.ASes))
	}
	p := pi.P
	if !w.Realloc(p, newAS, 3.5, 1.2, 0.8, -1) {
		t.Fatal("Realloc rejected a valid move")
	}
	got, ok := w.PrefixInfoOf(p)
	if !ok {
		t.Fatal("prefix vanished")
	}
	if got.ASIdx != newAS || got.Users != 3.5 || got.Activity != 1.2 || got.Diurnality != 0.8 || got.ResolverIdx != -1 {
		t.Fatalf("PrefixInfo after realloc = %+v", got)
	}
	// Longest-prefix match now attributes the /24 to the new AS.
	if as, found := w.ASOf(p.Addr()); !found || as.ASN != w.ASes[newAS].ASN {
		t.Fatalf("ASOf after realloc = %v,%v, want AS%d", as, found, w.ASes[newAS].ASN)
	}
}

func TestReallocRejects(t *testing.T) {
	w := mutateWorld(t)
	p := w.Prefixes[0].P
	if w.Realloc(p, -1, 1, 1, 1, -1) {
		t.Fatal("accepted negative AS index")
	}
	if w.Realloc(p, int32(len(w.ASes)), 1, 1, 1, -1) {
		t.Fatal("accepted out-of-range AS index")
	}
	// An unannounced /24: probe space beyond the last announced prefix.
	bogus := w.Prefixes[len(w.Prefixes)-1].P + 1<<16
	if w.Realloc(bogus, 0, 1, 1, 1, -1) {
		t.Fatal("accepted unannounced prefix")
	}
}

func TestReallocClampsResolverIdx(t *testing.T) {
	w := mutateWorld(t)
	p := w.Prefixes[0].P
	if !w.Realloc(p, w.Prefixes[0].ASIdx, 1, 1, 1, int32(len(w.Resolvers))+5) {
		t.Fatal("Realloc rejected")
	}
	if got, _ := w.PrefixInfoOf(p); got.ResolverIdx != -1 {
		t.Fatalf("out-of-range resolver index stored as %d, want -1", got.ResolverIdx)
	}
}

func TestSetGoogleDNSShareClamps(t *testing.T) {
	w := mutateWorld(t)
	if w.SetGoogleDNSShare(-1, 0.5) || w.SetGoogleDNSShare(int32(len(w.ASes)), 0.5) {
		t.Fatal("accepted out-of-range AS index")
	}
	if !w.SetGoogleDNSShare(0, 5.0) {
		t.Fatal("rejected valid index")
	}
	if got := w.ASes[0].GoogleDNSShare; got != 0.9 {
		t.Fatalf("share = %v, want clamp to 0.9", got)
	}
	w.SetGoogleDNSShare(0, 0)
	if got := w.ASes[0].GoogleDNSShare; got != 0.02 {
		t.Fatalf("share = %v, want clamp to 0.02", got)
	}
	w.SetGoogleDNSShare(0, 0.4)
	if got := w.ASes[0].GoogleDNSShare; got != 0.4 {
		t.Fatalf("share = %v, want 0.4", got)
	}
}

func TestScaleDiurnality(t *testing.T) {
	w := mutateWorld(t)
	p := w.Prefixes[0].P
	pi, _ := w.PrefixInfoOf(p)
	pi.Diurnality = 0.5
	if !w.ScaleDiurnality(p, 1.2) {
		t.Fatal("rejected valid prefix")
	}
	if got, _ := w.PrefixInfoOf(p); got.Diurnality != float32(0.5*1.2) {
		t.Fatalf("diurnality = %v", got.Diurnality)
	}
	w.ScaleDiurnality(p, 100)
	if got, _ := w.PrefixInfoOf(p); got.Diurnality != 1 {
		t.Fatalf("diurnality = %v, want clamp to 1", got.Diurnality)
	}
	w.ScaleDiurnality(p, 0)
	if got, _ := w.PrefixInfoOf(p); got.Diurnality != 0 {
		t.Fatalf("diurnality = %v, want 0", got.Diurnality)
	}
	bogus := w.Prefixes[len(w.Prefixes)-1].P + 1<<16
	if w.ScaleDiurnality(bogus, 1.1) {
		t.Fatal("accepted unannounced prefix")
	}
}

func TestSetChromiumShare(t *testing.T) {
	w := mutateWorld(t)
	if w.Cfg.Params.ChromiumShare == 0 {
		t.Fatal("generated world has zero Chromium share")
	}
	w.SetChromiumShare(0)
	if w.Cfg.Params.ChromiumShare != 0 {
		t.Fatal("share not zeroed")
	}
	w.SetChromiumShare(-3)
	if w.Cfg.Params.ChromiumShare != 0 {
		t.Fatal("negative share not floored at 0")
	}
	w.SetChromiumShare(0.5)
	if w.Cfg.Params.ChromiumShare != 0.5 {
		t.Fatal("share not set")
	}
}

func TestGoogleASIdx(t *testing.T) {
	w := mutateWorld(t)
	if got := w.GoogleASIdx(); w.ASes[got].ASN != w.GoogleAS().ASN {
		t.Fatalf("GoogleASIdx %d does not match GoogleAS", got)
	}
}
