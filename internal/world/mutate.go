package world

// Mutators for a churning world. A generated World is immutable for
// fixed-window campaigns; the streaming mode (internal/stream) replays a
// deterministic churn plan (internal/churn) through these methods, so
// the ground truth drifts under the measurement instead of holding
// still. Each mutator keeps the derived structures consistent where live
// consumers read them (byPrefix, the announcement trie, the traffic
// model's live parameter reads) and deliberately leaves batch-build
// inputs (AS.PrefixLo/Hi ranges, AS.Blocks, the geo database) at their
// generation-time values: real-world counterparts of those — RouteViews
// archives, MaxMind snapshots — lag reality too, and the lag is exactly
// what the streaming report measures.

import "clientmap/internal/netx"

// GoogleASIdx returns the index of the synthetic Google AS in ASes —
// the one AS churn must never re-allocate space into or out of, since
// Google Public DNS egress addresses live there.
func (w *World) GoogleASIdx() int32 { return w.googleASIdx }

// Realloc moves the announced /24 p to the AS at asIdx and redraws its
// client population: the ground-truth equivalent of an address block
// changing hands (or going dark when users is zero). The trie gains a
// more-specific /24 announcement for the new origin — longest-prefix
// match then attributes p to the new AS while the old covering block
// keeps announcing the rest of its space, which is how transferred
// blocks actually show up in BGP. Reports false if p is not an
// announced /24 or asIdx is out of range.
func (w *World) Realloc(p netx.Slash24, asIdx int32, users, activity, diurnality float32, resolverIdx int32) bool {
	pi, ok := w.PrefixInfoOf(p)
	if !ok || asIdx < 0 || int(asIdx) >= len(w.ASes) {
		return false
	}
	if resolverIdx >= int32(len(w.Resolvers)) {
		resolverIdx = -1
	}
	pi.ASIdx = asIdx
	pi.Users = users
	pi.Activity = activity
	pi.Diurnality = diurnality
	pi.ResolverIdx = resolverIdx
	w.announcements.Insert(p.Prefix(), asIdx)
	return true
}

// SetGoogleDNSShare sets the AS's Google Public DNS query share, clamped
// to the generator's share range so drifted worlds stay inside the
// envelope Generate produces. Reports false if asIdx is out of range.
func (w *World) SetGoogleDNSShare(asIdx int32, share float64) bool {
	if asIdx < 0 || int(asIdx) >= len(w.ASes) {
		return false
	}
	w.ASes[asIdx].GoogleDNSShare = clampShare(share)
	return true
}

// clampShare bounds a Google DNS share to the generator's range: every
// AS keeps some Google traffic and none sends everything there.
func clampShare(s float64) float64 {
	if s < 0.02 {
		return 0.02
	}
	if s > 0.9 {
		return 0.9
	}
	return s
}

// ScaleDiurnality multiplies the /24's diurnal amplitude by factor,
// clamped to [0, 1]. Reports false if p is not an announced /24.
func (w *World) ScaleDiurnality(p netx.Slash24, factor float64) bool {
	pi, ok := w.PrefixInfoOf(p)
	if !ok {
		return false
	}
	d := float64(pi.Diurnality) * factor
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	pi.Diurnality = float32(d)
	return true
}

// SetChromiumShare sets the fraction of browser sessions emitting
// Chromium interception probes. The traffic model reads the parameter
// live on every rate computation, so setting it to zero immediately
// starves the DNS-logs technique — the paper's "what if Chromium stops
// probing" deprecation scenario.
func (w *World) SetChromiumShare(share float64) {
	if share < 0 {
		share = 0
	}
	w.Cfg.Params.ChromiumShare = share
}
