// Package world generates and holds the synthetic Internet that every
// dataset and measurement technique in this module observes.
//
// The paper validates its techniques against privileged views of the real
// Internet (Microsoft CDN logs, APNIC estimates). Those views are
// unobtainable, so this package builds a single seeded ground truth —
// countries, ASes with ASdb-style categories, prefix allocations, per-/24
// client populations, recursive resolvers and resolver-choice mixes — and
// every other package derives its dataset from it mechanistically: the CDN
// "sees" client HTTP fetches, APNIC "samples" ad impressions, Google Public
// DNS caches fill from client DNS queries, root servers see Chromium
// interception probes. Cross-dataset overlap then *emerges* from the shared
// ground truth rather than being scripted, which is what makes reproducing
// the paper's comparison tables meaningful.
package world

import (
	"fmt"

	"clientmap/internal/geo"
	"clientmap/internal/netx"
	"clientmap/internal/randx"
)

// Category classifies an AS, mirroring the ASdb categories the paper uses
// in §4 to characterize ASes its techniques find but APNIC misses.
type Category string

// AS categories.
const (
	CategoryISP        Category = "isp"
	CategoryHosting    Category = "hosting"
	CategoryEducation  Category = "education"
	CategoryEnterprise Category = "enterprise"
	CategoryContent    Category = "content"
	CategoryGovernment Category = "government"
)

// Categories lists all AS categories in deterministic order.
var Categories = []Category{
	CategoryISP, CategoryHosting, CategoryEducation,
	CategoryEnterprise, CategoryContent, CategoryGovernment,
}

// ResolverKind distinguishes recursive resolver deployments.
type ResolverKind uint8

// Resolver kinds.
const (
	// ResolverISP serves the clients of its own AS.
	ResolverISP ResolverKind = iota
	// ResolverPublic is a third-party open resolver (not Google; Google
	// Public DNS is modeled separately because of its anycast + ECS
	// behaviour).
	ResolverPublic
)

// Resolver is one recursive resolver.
type Resolver struct {
	Addr netx.Addr
	// ASIdx indexes World.ASes.
	ASIdx int32
	Kind  ResolverKind
	Coord geo.Coord
	// ForwardsToRoots reports whether this resolver's cache misses reach
	// the root servers directly (and therefore appear in DITL traces).
	// Resolvers behind forwarders do not.
	ForwardsToRoots bool
}

// AS is one autonomous system of the synthetic Internet.
type AS struct {
	ASN      uint32
	Country  string
	Category Category
	Coord    geo.Coord
	// Blocks are the prefixes the AS announces into BGP.
	Blocks []netx.Prefix
	// PrefixLo/PrefixHi delimit this AS's entries in World.Prefixes.
	PrefixLo, PrefixHi int32
	// Users is the AS's total (ground-truth) human Internet users.
	Users float64
	// GoogleDNSShare is the fraction of the AS's client DNS queries that
	// go to Google Public DNS.
	GoogleDNSShare float64
	// Micro marks a long-tail network with a negligible user count.
	// Nearly half of real ASes are such networks; their (usually
	// provider-independent) address space clusters apart from eyeball
	// pools, so coarse ECS scopes rarely cover them.
	Micro bool
	// Resolvers indexes World.Resolvers for resolvers hosted in this AS.
	Resolvers []int32
}

// NumSlash24s returns how many /24s the AS announces.
func (a *AS) NumSlash24s() int {
	n := 0
	for _, b := range a.Blocks {
		n += b.NumSlash24s()
	}
	return n
}

// PrefixInfo is the ground truth for one announced /24.
type PrefixInfo struct {
	P     netx.Slash24
	ASIdx int32
	// Users is the human client population of the /24; zero means the /24
	// is announced but hosts no web clients.
	Users float32
	// Activity scales the /24's query/fetch volume relative to its user
	// count (bots and heavy users push it above 1).
	Activity float32
	// Diurnality is how strongly the /24's traffic follows the human
	// day-night cycle: ~1 for residential eyeballs, near 0 for hosting
	// space where machines run around the clock. The paper's §6 roadmap
	// proposes exactly this signal to separate human users from bots.
	Diurnality float32
	// Coord is the true location.
	Coord geo.Coord
	// ResolverIdx is the in-AS resolver its clients use for the non-Google
	// share of queries, or -1.
	ResolverIdx int32
}

// HasClients reports whether the /24 hosts any web clients.
func (p *PrefixInfo) HasClients() bool { return p.Users > 0 }

// GoogleASN is the ASN of the synthetic Google AS every world contains:
// it announces one /16 that hosts Google Public DNS's resolver egress
// addresses alongside Google's own (corporate/cloud) client space.
const GoogleASN uint32 = 15169

// World is the generated ground truth.
type World struct {
	Cfg       Config
	ASes      []*AS
	Prefixes  []PrefixInfo
	Resolvers []Resolver

	// googleASIdx indexes ASes for the synthetic Google AS.
	googleASIdx int32

	// byPrefix maps a /24 to its index in Prefixes.
	byPrefix map[netx.Slash24]int32
	// announcements maps announced blocks to AS indices (longest prefix
	// match), the ground truth behind the RouteViews dataset.
	announcements netx.Trie[int32]
	geoDB         *geo.DB
}

// ASOf returns the AS announcing the /24 containing a, if any.
func (w *World) ASOf(a netx.Addr) (*AS, bool) {
	idx, _, ok := w.announcements.Lookup(a)
	if !ok {
		return nil, false
	}
	return w.ASes[idx], true
}

// PrefixInfoOf returns the ground truth for a /24, if announced.
func (w *World) PrefixInfoOf(p netx.Slash24) (*PrefixInfo, bool) {
	idx, ok := w.byPrefix[p]
	if !ok {
		return nil, false
	}
	return &w.Prefixes[idx], true
}

// Announcements returns the BGP ground truth trie mapping announced blocks
// to indices into ASes.
func (w *World) Announcements() *netx.Trie[int32] { return &w.announcements }

// GeoDB returns the MaxMind-style geolocation database generated for this
// world (with its error model applied — it is *not* the ground truth).
func (w *World) GeoDB() *geo.DB { return w.geoDB }

// PublicSpan returns the /16-aligned blocks covering the allocated public
// space — the universe a whole-address-space scan iterates. (The real
// campaign scans all 15.5M public /24s; the synthetic world's allocator
// packs its space into one contiguous region with unannounced holes.)
func (w *World) PublicSpan() []netx.Prefix {
	if len(w.Prefixes) == 0 {
		return nil
	}
	lo := uint32(w.Prefixes[0].P) &^ 0xFF
	hi := uint32(w.Prefixes[0].P)
	for i := range w.Prefixes {
		p := uint32(w.Prefixes[i].P)
		if p < lo {
			lo = p &^ 0xFF
		}
		if p > hi {
			hi = p
		}
	}
	var out []netx.Prefix
	for b := lo; b <= hi; b += 256 {
		out = append(out, netx.PrefixFrom(netx.Slash24(b).Addr(), 16))
	}
	return out
}

// TotalUsers returns the ground-truth user total.
func (w *World) TotalUsers() float64 {
	var t float64
	for _, a := range w.ASes {
		t += a.Users
	}
	return t
}

// CountryOf returns the country code of an AS index.
func (w *World) CountryOf(asIdx int32) string { return w.ASes[asIdx].Country }

// GoogleAS returns the synthetic Google AS.
func (w *World) GoogleAS() *AS { return w.ASes[w.googleASIdx] }

// GoogleEgress returns the address Google Public DNS's PoP at catalog
// index popIdx uses when querying authoritatives and roots. Each PoP gets
// one /24 inside Google's announced /16.
func (w *World) GoogleEgress(popIdx int) netx.Addr {
	block := w.GoogleAS().Blocks[0]
	return netx.Slash24(uint32(block.FirstSlash24()) + uint32(popIdx)).AddrAt(53)
}

// Scale presets size the world. Absolute counts are far below the real
// Internet's (15.5M /24s); experiments compare shapes and ratios, which are
// scale-free.
type Scale struct {
	Name string
	// NumASes is the target AS count.
	NumASes int
	// MeanBlocks24 is the mean number of /24s per AS (heavy-tailed around
	// this mean).
	MeanBlocks24 int
	// UsersPerSlash24 scales ground-truth population so that per-/24 user
	// counts stay realistic at small scales.
	UsersPerSlash24 float64
	// MaxCountries limits the world to the N largest countries (0 = all).
	// Small worlds use fewer countries so each country's address region
	// stays densely allocated, as real RIR space is.
	MaxCountries int
}

// Predefined scales.
var (
	ScaleTiny   = Scale{Name: "tiny", NumASes: 120, MeanBlocks24: 12, UsersPerSlash24: 600, MaxCountries: 12}
	ScaleSmall  = Scale{Name: "small", NumASes: 700, MeanBlocks24: 18, UsersPerSlash24: 600, MaxCountries: 30}
	ScaleMedium = Scale{Name: "medium", NumASes: 3000, MeanBlocks24: 26, UsersPerSlash24: 600}
	ScaleLarge  = Scale{Name: "large", NumASes: 9000, MeanBlocks24: 30, UsersPerSlash24: 600}
)

// Params are the behavioural knobs of the generated Internet. Defaults are
// calibrated so the measurement pipelines land in the qualitative bands the
// paper reports (see the calibration tests in internal/experiments).
type Params struct {
	// GoogleDNSShareMean is the global mean share of client queries sent
	// to Google Public DNS (the paper cites 30-35% of queries to Azure
	// authoritative DNS coming from Google Public DNS).
	GoogleDNSShareMean float64
	// GoogleDNSShareByRegion overrides the mean share per region.
	GoogleDNSShareByRegion map[string]float64
	// ResolverProb is, per category, the probability an AS hosts its own
	// recursive resolver.
	ResolverProb map[Category]float64
	// RootVisibleProb is the probability an AS resolver forwards directly
	// to the roots (vs sitting behind a forwarder), making it visible to
	// the DNS-logs technique.
	RootVisibleProb float64
	// ChromiumShare is the fraction of browser sessions on Chromium-based
	// browsers.
	ChromiumShare float64
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		GoogleDNSShareMean: 0.32,
		GoogleDNSShareByRegion: map[string]float64{
			geo.RegionSouthAmerica: 0.16, // Figure 3: SA coverage is worst
			geo.RegionAfrica:       0.24,
		},
		ResolverProb: map[Category]float64{
			CategoryISP:        0.95,
			CategoryHosting:    0.65,
			CategoryEducation:  0.88,
			CategoryEnterprise: 0.60,
			CategoryContent:    0.70,
			CategoryGovernment: 0.70,
		},
		RootVisibleProb: 0.80,
		ChromiumShare:   0.70,
	}
}

// Config configures world generation.
type Config struct {
	Seed   randx.Seed
	Scale  Scale
	Params Params
}

// DefaultConfig returns a medium world with calibrated parameters.
func DefaultConfig(seed randx.Seed) Config {
	return Config{Seed: seed, Scale: ScaleMedium, Params: DefaultParams()}
}

func (c Config) validate() error {
	if c.Scale.NumASes <= 0 || c.Scale.MeanBlocks24 <= 0 {
		return fmt.Errorf("world: invalid scale %+v", c.Scale)
	}
	return nil
}
