package statefsck

import (
	"encoding/json"
	"fmt"
	"strings"
)

// classOrder fixes the rendering and counting order of classes.
var classOrder = []Class{
	ClassValid, ClassCorrupt, ClassVersionMismatch, ClassBrokenChain,
	ClassOrphanTmp, ClassStaleClaim, ClassAux,
}

// Problems counts findings that demand attention: everything that is
// neither a valid checkpoint nor deliberately-ignored aux state.
func (r *Report) Problems() int {
	n := 0
	for _, f := range r.Findings {
		if f.Class != ClassValid && f.Class != ClassAux {
			n++
		}
	}
	return n
}

// Repaired counts findings whose planned action was executed.
func (r *Report) Repaired() int {
	n := 0
	for _, f := range r.Findings {
		if f.Applied {
			n++
		}
	}
	return n
}

// counts tallies findings per class.
func (r *Report) counts() map[Class]int {
	m := make(map[Class]int)
	for _, f := range r.Findings {
		m[f.Class]++
	}
	return m
}

// Summary renders the one-line verdict, e.g.
// "7 entries: 4 valid, 1 corrupt, 2 orphan-tmp; 3 repaired".
func (r *Report) Summary() string {
	if len(r.Findings) == 0 {
		return "empty state directory: nothing to check"
	}
	m := r.counts()
	parts := make([]string, 0, len(classOrder))
	for _, c := range classOrder {
		if m[c] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", m[c], c))
		}
	}
	s := fmt.Sprintf("%d entries: %s", len(r.Findings), strings.Join(parts, ", "))
	if n := r.Repaired(); n > 0 {
		s += fmt.Sprintf("; %d repaired", n)
	}
	return s
}

// Text renders the full deterministic report: one line per finding,
// sorted by path, followed by the summary line.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "statefsck %s\n", r.Dir)
	for _, f := range r.Findings {
		action := string(f.Action)
		if f.Applied {
			action += "!"
		}
		fmt.Fprintf(&b, "  %-16s %-11s %s", f.Class, action, f.Path)
		if f.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", f.Detail)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s\n", r.Summary())
	return b.String()
}

// JSON renders the report as indented JSON, stable for a given
// directory state.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
