// Package statefsck is the state-directory scanner/repairer: the tool
// that turns "the disk lied to a campaign" from a stranded run into a
// diagnosis and a repair. It walks a pipeline state directory (see
// internal/pipeline), classifies every file — valid checkpoint, corrupt
// container, version mismatch, orphaned temp file, satisfied steal
// claim, delta whose base hash no longer verifies — and, in repair
// mode, quarantines bad checkpoints and sweeps litter so the next
// -resume rebuilds exactly the damaged suffix instead of wedging or
// silently trusting rot.
//
// Repair invariants:
//
//   - Repair never deletes a checkpoint: bad snapshots move to the
//     quarantine/ subdirectory (flattened name), preserving the
//     evidence; only temp litter and satisfied claims are removed.
//   - Repair only subtracts. It never writes or rewrites a checkpoint,
//     so running it cannot make a state directory less consistent than
//     it found it — the crash-only property.
//   - Delta chains (probe-pass-k, stream-hour-k) are truncated from the
//     first unverifiable link: a delta whose Base hash does not match
//     its predecessor's payload hash is quarantined along with every
//     later delta, leaving the longest prefix that still verifies.
//   - Everything it does not understand is kept ("aux"): fsck's
//     ignorance must never destroy state.
//
// A report is deterministic for a given directory state: findings are
// sorted by path and carry no timestamps, so two scans of the same
// damage render byte-identical text and JSON.
package statefsck

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"clientmap/internal/serve"
	"clientmap/internal/snapshot"
	"clientmap/internal/statefs"
	"clientmap/internal/stream"
)

// Class is a file's classification.
type Class string

const (
	// ClassValid is a checkpoint whose container parses, whose checksum
	// matches, and whose payload decodes under the registered codec.
	// (Whether its fingerprint matches the current configuration is the
	// pipeline's business, not fsck's.)
	ClassValid Class = "valid"
	// ClassCorrupt is a truncated, checksum-failing or undecodable
	// snapshot — torn writes and bit rot land here.
	ClassCorrupt Class = "corrupt"
	// ClassVersionMismatch is a container written by a different format
	// or artifact version.
	ClassVersionMismatch Class = "version-mismatch"
	// ClassOrphanTmp is temp-file litter (*.tmp-*) left by a killed or
	// fault-stopped writer.
	ClassOrphanTmp Class = "orphan-tmp"
	// ClassStaleClaim is a steal-claim file whose stage checkpoint
	// exists and verifies: the claim has served its purpose.
	ClassStaleClaim Class = "stale-claim"
	// ClassBrokenChain is a structurally valid delta checkpoint whose
	// base hash cannot be verified against its predecessor.
	ClassBrokenChain Class = "broken-chain"
	// ClassAux is everything fsck deliberately leaves alone: traces,
	// metrics, quarantined files, claims still in flight, foreign files.
	ClassAux Class = "aux"
)

// Action is what Scan plans (and Repair executes) for a finding.
type Action string

const (
	ActionKeep       Action = "keep"
	ActionSweep      Action = "sweep"
	ActionQuarantine Action = "quarantine"
)

// Finding is one file's classification.
type Finding struct {
	// Path is relative to the scanned directory, '/'-separated.
	Path   string `json:"path"`
	Class  Class  `json:"class"`
	Action Action `json:"action"`
	Detail string `json:"detail,omitempty"`
	// Applied reports whether Repair executed the action.
	Applied bool `json:"applied,omitempty"`
}

// Report is the result of a Scan or Repair, deterministic for a given
// directory state (findings sorted by path, no timestamps).
type Report struct {
	Dir      string    `json:"dir"`
	Findings []Finding `json:"findings"`
}

// Options tune a scan.
type Options struct {
	// MinTmpAge protects temp files younger than this from sweeping: in
	// a shared state directory another runner may be mid-write. The
	// automatic resume-time fsck passes one minute; 0 sweeps all litter
	// (the explicit-cmd default, where the operator knows the fleet is
	// down).
	MinTmpAge time.Duration
}

// quarantineDir is where Repair moves bad checkpoints, flattened.
const quarantineDir = "quarantine"

// skipDirs are top-level directories fsck records as aux and does not
// descend into: their contents are not checkpoint state.
var skipDirs = map[string]string{
	quarantineDir: "previously quarantined files",
	"traces":      "generated DITL root traces",
	"metrics":     "trace span logs",
}

// kindSpec registers a deep check for a known artifact kind: the
// expected version and a decoder. base is the delta's recorded base
// hash ("" for non-delta kinds).
type kindSpec struct {
	version uint16
	decode  func(*snapshot.Reader) (base string, err error)
}

var kinds = map[string]kindSpec{
	snapshot.KindCampaign: {snapshot.VersionCampaign, func(r *snapshot.Reader) (string, error) {
		_, err := snapshot.DecodeCampaign(r)
		return "", err
	}},
	snapshot.KindCampaignDelta: {snapshot.VersionCampaignDelta, func(r *snapshot.Reader) (string, error) {
		d, err := snapshot.DecodePassDelta(r)
		if err != nil {
			return "", err
		}
		return d.Base, nil
	}},
	snapshot.KindShardResult: {snapshot.VersionShardResult, func(r *snapshot.Reader) (string, error) {
		_, err := snapshot.DecodeShardResult(r)
		return "", err
	}},
	snapshot.KindDNSLogs: {snapshot.VersionDNSLogs, func(r *snapshot.Reader) (string, error) {
		_, err := snapshot.DecodeDNSLogs(r)
		return "", err
	}},
	snapshot.KindCDN: {snapshot.VersionCDN, func(r *snapshot.Reader) (string, error) {
		_, err := snapshot.DecodeCDN(r)
		return "", err
	}},
	snapshot.KindAPNIC: {snapshot.VersionAPNIC, func(r *snapshot.Reader) (string, error) {
		_, err := snapshot.DecodeAPNIC(r)
		return "", err
	}},
	snapshot.KindASDB: {snapshot.VersionASDB, func(r *snapshot.Reader) (string, error) {
		_, err := snapshot.DecodeASDB(r)
		return "", err
	}},
	snapshot.KindPrefixDataset: {snapshot.VersionPrefixDataset, func(r *snapshot.Reader) (string, error) {
		_, err := snapshot.DecodePrefixDataset(r)
		return "", err
	}},
	snapshot.KindASDataset: {snapshot.VersionASDataset, func(r *snapshot.Reader) (string, error) {
		_, err := snapshot.DecodeASDataset(r)
		return "", err
	}},
	snapshot.KindStreamDelta: {snapshot.VersionStreamDelta, func(r *snapshot.Reader) (string, error) {
		d, err := stream.DecodeHourDelta(r)
		if err != nil {
			return "", err
		}
		return d.Pass.Base, nil
	}},
	serve.KindClientMap: {serve.VersionClientMap, func(r *snapshot.Reader) (string, error) {
		_, err := serve.DecodeClientMap(r)
		return "", err
	}},
}

// snapInfo is what the walk records per .snap file for the chain and
// claim passes.
type snapInfo struct {
	stage   string // relative path minus ".snap"
	hash    string // payload hash, valid snaps only
	base    string // recorded delta base, delta kinds only
	idx     int    // index into Report.Findings
	healthy bool
}

// scanner carries one walk's state.
type scanner struct {
	fs       statefs.FS
	dir      string
	opts     Options
	now      time.Time
	findings []Finding
	snaps    map[string]*snapInfo // by stage name
	claims   []int                // finding indices of .steal files
}

// Scan walks dir and classifies every file without touching anything.
// A missing directory yields an empty report: nothing to check is not
// an error (first run with -resume).
func Scan(fsys statefs.FS, dir string, opts Options) (*Report, error) {
	s := &scanner{
		fs:    statefs.Or(fsys),
		dir:   dir,
		opts:  opts,
		now:   time.Now(),
		snaps: make(map[string]*snapInfo),
	}
	if err := s.walk(""); err != nil {
		return nil, err
	}
	s.verifyChain("probe-pass-")
	s.verifyChain("stream-hour-")
	s.resolveClaims()
	sort.Slice(s.findings, func(i, j int) bool { return s.findings[i].Path < s.findings[j].Path })
	return &Report{Dir: dir, Findings: s.findings}, nil
}

// Repair scans and then executes the planned actions: sweeps are
// removed, quarantines are renamed into quarantine/ (flattened path).
// A failed action downgrades to a kept finding with the error in the
// detail — repair must never wedge on a half-broken filesystem.
func Repair(fsys statefs.FS, dir string, opts Options) (*Report, error) {
	rep, err := Scan(fsys, dir, opts)
	if err != nil {
		return nil, err
	}
	fs := statefs.Or(fsys)
	for i := range rep.Findings {
		f := &rep.Findings[i]
		abs := filepath.Join(dir, filepath.FromSlash(f.Path))
		switch f.Action {
		case ActionSweep:
			if err := fs.Remove(abs); err != nil {
				f.Detail += "; sweep failed: " + err.Error()
			} else {
				f.Applied = true
			}
		case ActionQuarantine:
			qdir := filepath.Join(dir, quarantineDir)
			if err := fs.MkdirAll(qdir); err != nil {
				f.Detail += "; quarantine failed: " + err.Error()
				continue
			}
			dst := filepath.Join(qdir, strings.ReplaceAll(f.Path, "/", "__"))
			if err := fs.Rename(abs, dst); err != nil {
				f.Detail += "; quarantine failed: " + err.Error()
			} else {
				f.Applied = true
			}
		}
	}
	return rep, nil
}

func (s *scanner) add(f Finding) int {
	s.findings = append(s.findings, f)
	return len(s.findings) - 1
}

func (s *scanner) walk(rel string) error {
	entries, err := s.fs.ReadDir(filepath.Join(s.dir, filepath.FromSlash(rel)))
	if err != nil {
		if rel == "" && errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		name := e.Name()
		sub := name
		if rel != "" {
			sub = rel + "/" + name
		}
		if e.IsDir() {
			if rel == "" {
				if why, skip := skipDirs[name]; skip {
					s.add(Finding{Path: sub + "/", Class: ClassAux, Action: ActionKeep, Detail: why})
					continue
				}
			}
			if err := s.walk(sub); err != nil {
				return err
			}
			continue
		}
		s.classify(sub, e)
	}
	return nil
}

func (s *scanner) classify(rel string, e os.DirEntry) {
	base := filepath.Base(rel)
	switch {
	case strings.Contains(base, ".tmp-"):
		s.classifyTmp(rel, e)
	case strings.HasSuffix(base, ".steal"):
		s.claims = append(s.claims, s.add(Finding{
			Path: rel, Class: ClassAux, Action: ActionKeep,
			Detail: "steal claim — stage not checkpointed, owner may be mid-build",
		}))
	case strings.HasSuffix(base, ".snap"):
		s.classifySnap(rel)
	default:
		s.add(Finding{Path: rel, Class: ClassAux, Action: ActionKeep, Detail: "not checkpoint state"})
	}
}

func (s *scanner) classifyTmp(rel string, e os.DirEntry) {
	if s.opts.MinTmpAge > 0 {
		if info, err := e.Info(); err == nil && s.now.Sub(info.ModTime()) < s.opts.MinTmpAge {
			s.add(Finding{
				Path: rel, Class: ClassOrphanTmp, Action: ActionKeep,
				Detail: fmt.Sprintf("temp file younger than %s — a live writer may own it", s.opts.MinTmpAge),
			})
			return
		}
	}
	s.add(Finding{Path: rel, Class: ClassOrphanTmp, Action: ActionSweep,
		Detail: "temp litter from a dead writer"})
}

func (s *scanner) classifySnap(rel string) {
	stage := strings.TrimSuffix(rel, ".snap")
	data, err := s.fs.ReadFile(filepath.Join(s.dir, filepath.FromSlash(rel)))
	if err != nil {
		s.snaps[stage] = &snapInfo{stage: stage, idx: s.add(Finding{
			Path: rel, Class: ClassCorrupt, Action: ActionQuarantine,
			Detail: "unreadable: " + err.Error(),
		})}
		return
	}
	h, r, hash, err := snapshot.Open(data)
	if err != nil {
		class := ClassCorrupt
		if errors.Is(err, snapshot.ErrVersionMismatch) {
			class = ClassVersionMismatch
		}
		s.snaps[stage] = &snapInfo{stage: stage, idx: s.add(Finding{
			Path: rel, Class: class, Action: ActionQuarantine, Detail: err.Error(),
		})}
		return
	}
	spec, known := kinds[h.Kind]
	if !known {
		s.snaps[stage] = &snapInfo{stage: stage, hash: hash, healthy: true, idx: s.add(Finding{
			Path: rel, Class: ClassValid, Action: ActionKeep,
			Detail: fmt.Sprintf("%s v%d, checksum ok (kind not deep-checked)", h.Kind, h.Version),
		})}
		return
	}
	if err := snapshot.Check(h, h.Kind, spec.version); err != nil {
		s.snaps[stage] = &snapInfo{stage: stage, idx: s.add(Finding{
			Path: rel, Class: ClassVersionMismatch, Action: ActionQuarantine, Detail: err.Error(),
		})}
		return
	}
	dbase, err := spec.decode(r)
	if err != nil {
		s.snaps[stage] = &snapInfo{stage: stage, idx: s.add(Finding{
			Path: rel, Class: ClassCorrupt, Action: ActionQuarantine,
			Detail: "checksum ok but payload does not decode: " + err.Error(),
		})}
		return
	}
	detail := fmt.Sprintf("%s v%d", h.Kind, h.Version)
	if dbase != "" {
		detail += fmt.Sprintf(", base %.12s", dbase)
	}
	s.snaps[stage] = &snapInfo{stage: stage, hash: hash, base: dbase, healthy: true,
		idx: s.add(Finding{Path: rel, Class: ClassValid, Action: ActionKeep, Detail: detail})}
}

// chainStage matches top-level delta stages: "<prefix><k>" with no
// directory component (shard sub-stages verify standalone).
var chainStage = regexp.MustCompile(`^(probe-pass-|stream-hour-)(\d+)$`)

// chainAnchor is the stage whose payload hash the first delta of every
// chain records as its base.
const chainAnchor = "calibration"

// verifyChain truncates the prefix's delta chain at the first link
// whose base cannot be verified: a missing or unhealthy predecessor, or
// a base hash that does not match the predecessor's payload hash. The
// broken delta and every later one are re-classified broken-chain and
// quarantined — resume then rebuilds exactly the damaged suffix.
func (s *scanner) verifyChain(prefix string) {
	byK := make(map[int]*snapInfo)
	maxK := -1
	for stage, info := range s.snaps {
		m := chainStage.FindStringSubmatch(stage)
		if m == nil || m[1] != prefix {
			continue
		}
		k, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		byK[k] = info
		if k > maxK {
			maxK = k
		}
	}
	if maxK < 0 {
		return
	}
	prevHash, prevName := "", chainAnchor
	if a, ok := s.snaps[chainAnchor]; ok && a.healthy {
		prevHash = a.hash
	}
	broken := ""
	for k := 0; k <= maxK; k++ {
		info, ok := byK[k]
		if !ok { // gap: later deltas have no verifiable lineage
			if broken == "" {
				broken = fmt.Sprintf("%s%d missing", prefix, k)
			}
			prevHash, prevName = "", fmt.Sprintf("%s%d", prefix, k)
			continue
		}
		if !info.healthy { // already corrupt/mismatched; later deltas lose their base
			if broken == "" {
				broken = fmt.Sprintf("%s%d is %s", prefix, k, s.findings[info.idx].Class)
			}
			prevHash, prevName = "", info.stage
			continue
		}
		switch {
		case broken != "":
			s.reclass(info, fmt.Sprintf("chain truncated: %s", broken))
		case prevHash == "":
			s.reclass(info, fmt.Sprintf("base %s unverifiable (%s missing or invalid)", prevName, prevName))
			broken = prevName + " unverifiable"
		case info.base != prevHash:
			s.reclass(info, fmt.Sprintf("base %.12s does not match %s payload %.12s", info.base, prevName, prevHash))
			broken = fmt.Sprintf("%s%d base mismatch", prefix, k)
		}
		prevHash, prevName = info.hash, info.stage
		if s.findings[info.idx].Class == ClassBrokenChain {
			prevHash = "" // a quarantined link cannot anchor its successor
		}
	}
}

// reclass downgrades a valid delta to broken-chain.
func (s *scanner) reclass(info *snapInfo, detail string) {
	f := &s.findings[info.idx]
	f.Class = ClassBrokenChain
	f.Action = ActionQuarantine
	f.Detail = detail
	info.healthy = false
}

// resolveClaims marks steal claims whose stage checkpoint exists and
// verifies as stale (sweep). The claim filename is the stage name with
// '/' flattened to '_' (see experiments.fileGate.claim); fsck applies
// the same forward mapping to every known-good stage rather than trying
// to invert the ambiguous flattening.
func (s *scanner) resolveClaims() {
	satisfied := make(map[string]string) // claim base name -> stage
	for stage, info := range s.snaps {
		if info.healthy {
			satisfied[strings.ReplaceAll(stage, "/", "_")+".steal"] = stage
		}
	}
	for _, idx := range s.claims {
		f := &s.findings[idx]
		if stage, ok := satisfied[filepath.Base(f.Path)]; ok {
			f.Class = ClassStaleClaim
			f.Action = ActionSweep
			f.Detail = fmt.Sprintf("claim satisfied: %s checkpoint is valid", stage)
		}
	}
}
