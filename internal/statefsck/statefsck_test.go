package statefsck

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/snapshot"
	"clientmap/internal/statefs"
)

// writeDelta persists a minimal PassDelta checkpoint for stage and
// returns its payload hash. Chain tests thread hashes through Base.
func writeDelta(t *testing.T, dir, stage, base string) string {
	t.Helper()
	return writeDeltaVersion(t, dir, stage, base, snapshot.VersionCampaignDelta)
}

func writeDeltaVersion(t *testing.T, dir, stage, base string, version uint16) string {
	t.Helper()
	d := &cacheprobe.PassDelta{Base: base, Passes: 4}
	h := snapshot.Header{Kind: snapshot.KindCampaignDelta, Version: version, Fingerprint: "fp"}
	data, hash := snapshot.Marshal(h, func(w *snapshot.Writer) { snapshot.EncodePassDelta(w, d) })
	writeRaw(t, dir, stage+".snap", data)
	return hash
}

func writeRaw(t *testing.T, dir, rel string, data []byte) {
	t.Helper()
	path := filepath.Join(dir, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// chainDir builds calibration + probe-pass-0..n-1 correctly chained.
func chainDir(t *testing.T, dir string, n int) []string {
	t.Helper()
	hashes := make([]string, 0, n+1)
	h := writeDelta(t, dir, "calibration", "")
	hashes = append(hashes, h)
	for k := 0; k < n; k++ {
		h = writeDelta(t, dir, ProbePass(k), h)
		hashes = append(hashes, h)
	}
	return hashes
}

func ProbePass(k int) string { return "probe-pass-" + string(rune('0'+k)) }

// findingFor returns the finding for a relative path, failing if absent.
func findingFor(t *testing.T, rep *Report, path string) Finding {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Path == path {
			return f
		}
	}
	t.Fatalf("no finding for %q in:\n%s", path, rep.Text())
	return Finding{}
}

func TestScanMissingDir(t *testing.T) {
	rep, err := Scan(nil, filepath.Join(t.TempDir(), "never-created"), Options{})
	if err != nil {
		t.Fatalf("missing dir should scan clean: %v", err)
	}
	if len(rep.Findings) != 0 || rep.Problems() != 0 {
		t.Fatalf("expected empty report, got:\n%s", rep.Text())
	}
	if got := rep.Summary(); got != "empty state directory: nothing to check" {
		t.Fatalf("summary = %q", got)
	}
}

func TestScanValidChain(t *testing.T) {
	dir := t.TempDir()
	chainDir(t, dir, 3)
	rep, err := Scan(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Problems() != 0 {
		t.Fatalf("clean chain reported problems:\n%s", rep.Text())
	}
	if len(rep.Findings) != 4 {
		t.Fatalf("want 4 findings, got:\n%s", rep.Text())
	}
	for _, f := range rep.Findings {
		if f.Class != ClassValid || f.Action != ActionKeep {
			t.Fatalf("finding %+v not valid/keep", f)
		}
	}

	// Determinism: scanning the same damage twice renders byte-identical
	// text and JSON.
	rep2, err := Scan(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Text() != rep2.Text() {
		t.Fatal("Text() not deterministic")
	}
	j1, _ := rep.JSON()
	j2, _ := rep2.JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("JSON() not deterministic")
	}
}

func TestClassifyDamage(t *testing.T) {
	dir := t.TempDir()
	hashes := chainDir(t, dir, 2)
	_ = hashes

	// Truncate a standalone stage: corrupt.
	data, err := os.ReadFile(filepath.Join(dir, "calibration.snap"))
	if err != nil {
		t.Fatal(err)
	}
	writeRaw(t, dir, "truncated.snap", data[:len(data)/2])
	// Flip a payload byte: checksum mismatch, corrupt.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-9] ^= 0x40
	writeRaw(t, dir, "flipped.snap", flipped)
	// Wrong artifact version: version-mismatch.
	writeDeltaVersion(t, dir, "old-format", "", 99)
	// Unknown kind with a good checksum: valid, checksum-only.
	uh := snapshot.Header{Kind: "experiments.Baselines", Version: 1}
	udata, _ := snapshot.Marshal(uh, func(w *snapshot.Writer) { w.String("opaque") })
	writeRaw(t, dir, "baselines.snap", udata)
	// Foreign file: aux.
	writeRaw(t, dir, "notes.txt", []byte("operator scribbles"))

	rep, err := Scan(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]struct {
		class  Class
		action Action
	}{
		"truncated.snap":   {ClassCorrupt, ActionQuarantine},
		"flipped.snap":     {ClassCorrupt, ActionQuarantine},
		"old-format.snap":  {ClassVersionMismatch, ActionQuarantine},
		"baselines.snap":   {ClassValid, ActionKeep},
		"notes.txt":        {ClassAux, ActionKeep},
		"calibration.snap": {ClassValid, ActionKeep},
	} {
		f := findingFor(t, rep, path)
		if f.Class != want.class || f.Action != want.action {
			t.Errorf("%s: got %s/%s, want %s/%s", path, f.Class, f.Action, want.class, want.action)
		}
	}
}

func TestChainTruncationOnCorruptLink(t *testing.T) {
	dir := t.TempDir()
	chainDir(t, dir, 4)
	// Rot pass 1: it must go, and passes 2 and 3 — structurally pristine
	// — lose their verifiable lineage and go with it.
	path := filepath.Join(dir, "probe-pass-1.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Scan(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantClass := map[string]Class{
		"calibration.snap":  ClassValid,
		"probe-pass-0.snap": ClassValid,
		"probe-pass-1.snap": ClassCorrupt,
		"probe-pass-2.snap": ClassBrokenChain,
		"probe-pass-3.snap": ClassBrokenChain,
	}
	for path, want := range wantClass {
		if f := findingFor(t, rep, path); f.Class != want {
			t.Errorf("%s: got %s, want %s\n%s", path, f.Class, want, rep.Text())
		}
	}
}

func TestChainTruncationOnBaseMismatch(t *testing.T) {
	dir := t.TempDir()
	chainDir(t, dir, 2)
	// Rewrite pass 1 with a forged base: checksum fine, lineage wrong.
	writeDelta(t, dir, "probe-pass-1", "0000deadbeef0000")

	rep, err := Scan(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := findingFor(t, rep, "probe-pass-1.snap")
	if f.Class != ClassBrokenChain || f.Action != ActionQuarantine {
		t.Fatalf("forged base: got %s/%s\n%s", f.Class, f.Action, rep.Text())
	}
	if !strings.Contains(f.Detail, "does not match") {
		t.Fatalf("detail %q should name the mismatch", f.Detail)
	}
	if f := findingFor(t, rep, "probe-pass-0.snap"); f.Class != ClassValid {
		t.Fatalf("pass 0 should survive: %+v", f)
	}
}

func TestChainAnchorMissing(t *testing.T) {
	dir := t.TempDir()
	h := writeDelta(t, dir, "probe-pass-0", "feedface")
	writeDelta(t, dir, "probe-pass-1", h)
	// No calibration checkpoint at all: pass 0's base is unverifiable,
	// and the whole chain goes with it.
	rep, err := Scan(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"probe-pass-0.snap", "probe-pass-1.snap"} {
		if f := findingFor(t, rep, path); f.Class != ClassBrokenChain {
			t.Errorf("%s: got %s, want broken-chain\n%s", path, f.Class, rep.Text())
		}
	}
}

func TestOrphanTmpAge(t *testing.T) {
	dir := t.TempDir()
	chainDir(t, dir, 1)
	writeRaw(t, dir, "calibration.snap.tmp-dead1", []byte("partial"))
	writeRaw(t, dir, "calibration.snap.tmp-live2", []byte("partial"))
	old := time.Now().Add(-10 * time.Minute)
	if err := os.Chtimes(filepath.Join(dir, "calibration.snap.tmp-dead1"), old, old); err != nil {
		t.Fatal(err)
	}

	rep, err := Scan(nil, dir, Options{MinTmpAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if f := findingFor(t, rep, "calibration.snap.tmp-dead1"); f.Class != ClassOrphanTmp || f.Action != ActionSweep {
		t.Fatalf("old litter: %+v", f)
	}
	if f := findingFor(t, rep, "calibration.snap.tmp-live2"); f.Class != ClassOrphanTmp || f.Action != ActionKeep {
		t.Fatalf("fresh temp must be kept (live writer may own it): %+v", f)
	}

	// Without the guard everything sweeps.
	rep, err = Scan(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := findingFor(t, rep, "calibration.snap.tmp-live2"); f.Action != ActionSweep {
		t.Fatalf("MinTmpAge=0 should sweep all litter: %+v", f)
	}
}

func TestStealClaims(t *testing.T) {
	dir := t.TempDir()
	h := writeDelta(t, dir, "calibration", "")
	writeDelta(t, dir, "probe-pass-0", h)
	// Shard sub-stage checkpoint plus its satisfied claim.
	writeDelta(t, dir, "probe-pass-0/shard-1", "")
	writeRaw(t, dir, "shards/probe-pass-0_shard-1.steal", []byte("2\n"))
	// Claim for a stage nobody checkpointed: owner may be mid-build.
	writeRaw(t, dir, "shards/probe-pass-1_shard-0.steal", []byte("0\n"))

	rep, err := Scan(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := findingFor(t, rep, "shards/probe-pass-0_shard-1.steal"); f.Class != ClassStaleClaim || f.Action != ActionSweep {
		t.Fatalf("satisfied claim: %+v", f)
	}
	if f := findingFor(t, rep, "shards/probe-pass-1_shard-0.steal"); f.Class != ClassAux || f.Action != ActionKeep {
		t.Fatalf("unsatisfied claim must be kept: %+v", f)
	}
	if f := findingFor(t, rep, "probe-pass-0/shard-1.snap"); f.Class != ClassValid {
		t.Fatalf("shard sub-stage should verify standalone: %+v", f)
	}
}

func TestRepairConverges(t *testing.T) {
	dir := t.TempDir()
	chainDir(t, dir, 3)
	// Corrupt pass 1, drop litter, leave a satisfied claim.
	path := filepath.Join(dir, "probe-pass-1.snap")
	data, _ := os.ReadFile(path)
	data[len(data)-10] ^= 1
	os.WriteFile(path, data, 0o644)
	writeRaw(t, dir, "probe-pass-1.snap.tmp-x1", []byte("junk"))
	writeRaw(t, dir, "shards/calibration.steal", []byte("1\n"))

	rep, err := Repair(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Repaired(); got != 4 {
		t.Fatalf("want 4 repairs (pass 1 + pass 2 quarantined, litter + claim swept), got %d:\n%s", got, rep.Text())
	}
	// Quarantine preserved the evidence under a flattened name.
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "probe-pass-1.snap")); err != nil {
		t.Fatalf("quarantined checkpoint missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint still in place")
	}
	if _, err := os.Stat(filepath.Join(dir, "probe-pass-1.snap.tmp-x1")); !os.IsNotExist(err) {
		t.Fatal("litter survived repair")
	}

	// A second pass over the repaired directory finds nothing to do:
	// repair is idempotent and convergent.
	rep2, err := Repair(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Problems() != 0 || rep2.Repaired() != 0 {
		t.Fatalf("repair did not converge:\n%s", rep2.Text())
	}
}

func TestStreamChain(t *testing.T) {
	dir := t.TempDir()
	h := writeDelta(t, dir, "calibration", "")
	h0 := writeStreamHour(t, dir, 0, h)
	writeStreamHour(t, dir, 1, h0)
	writeStreamHour(t, dir, 2, "bogus-base")

	rep, err := Scan(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := findingFor(t, rep, "stream-hour-1.snap"); f.Class != ClassValid {
		t.Fatalf("hour 1: %+v", f)
	}
	if f := findingFor(t, rep, "stream-hour-2.snap"); f.Class != ClassBrokenChain {
		t.Fatalf("hour 2 forged base: %+v\n%s", f, rep.Text())
	}
}

// writeStreamHour persists a minimal HourDelta checkpoint whose
// Pass.Base is base, returning its payload hash.
func writeStreamHour(t *testing.T, dir string, k int, base string) string {
	t.Helper()
	h := snapshot.Header{Kind: snapshot.KindStreamDelta, Version: snapshot.VersionStreamDelta, Fingerprint: "fp"}
	data, hash := snapshot.Marshal(h, func(w *snapshot.Writer) {
		w.Int(k)
		snapshot.EncodeChurnEvents(w, nil)
		snapshot.EncodePassDelta(w, &cacheprobe.PassDelta{Base: base})
		w.Int(0) // no DNS /24s
	})
	writeRaw(t, dir, StreamHour(k)+".snap", data)
	return hash
}

func StreamHour(k int) string { return "stream-hour-" + string(rune('0'+k)) }

// brokenFS refuses every mutation — the half-broken filesystem repair
// must never wedge on.
type brokenFS struct{ statefs.FS }

func (brokenFS) Remove(string) error         { return errors.New("read-only filesystem") }
func (brokenFS) Rename(string, string) error { return errors.New("read-only filesystem") }
func (brokenFS) MkdirAll(path string) error  { return errors.New("read-only filesystem") }

// TestRepairNeverWedges: when every sweep and quarantine fails, Repair
// still returns the full report — actions downgrade to kept findings
// with the failure in the detail, and nothing reports Applied.
func TestRepairNeverWedges(t *testing.T) {
	dir := t.TempDir()
	chainDir(t, dir, 2)
	damage(t, dir, "probe-pass-1.snap")
	writeRaw(t, dir, "litter.snap.tmp-4", []byte("partial"))
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "litter.snap.tmp-4"), old, old); err != nil {
		t.Fatal(err)
	}

	rep, err := Repair(brokenFS{statefs.Disk{}}, dir, Options{MinTmpAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Problems() == 0 {
		t.Fatal("expected problems on a damaged directory")
	}
	if rep.Repaired() != 0 {
		t.Errorf("Repaired() = %d on a read-only filesystem, want 0", rep.Repaired())
	}
	failed := 0
	for _, f := range rep.Findings {
		if f.Applied {
			t.Errorf("%s reports Applied on a read-only filesystem", f.Path)
		}
		if strings.Contains(f.Detail, "failed: read-only filesystem") {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no finding carries the repair failure in its detail")
	}

	// The damage is still there for a later, healthier repair.
	if _, err := os.Stat(filepath.Join(dir, "probe-pass-1.snap")); err != nil {
		t.Errorf("failed quarantine must leave the file in place: %v", err)
	}
	rep2, err := Repair(statefs.Disk{}, dir, Options{MinTmpAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Repaired() == 0 {
		t.Error("healthy repair after a wedged one applied nothing")
	}
}

// damage flips one trailing payload byte of an existing snap in place.
func damage(t *testing.T, dir, rel string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
