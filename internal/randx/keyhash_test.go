package randx

import (
	"testing"
)

// TestByteKeyVariantsMatchStrings is the determinism contract of the
// zero-alloc key path: hashing an append-built []byte key must produce
// exactly the value hashing the equal string always has, or every
// hash-derived decision (txids, scope flips, fault rolls, Poisson
// samples) would silently change under the optimized builders.
func TestByteKeyVariantsMatchStrings(t *testing.T) {
	keys := []string{
		"",
		"a",
		"probe/3/fra/en.wikipedia.org/192.0.2.0/24",
		"cacheprobe/txid/probe/0/ams/www.wikipedia.org/10.0.0.0/16",
		"traffic/ev/gpdns/example.com/198.51.100.0/20/7/2/12345",
		"faults/loss/1025/41112/8.8.8.8/tcp/aws:eu-west-1",
		"authdns/scope/en.wikipedia.org/203.0.113.0/18",
		"roots/emit/41/95",
	}
	seeds := []Seed{0, 1, 2021, 0xDEADBEEF, ^Seed(0)}
	for _, seed := range seeds {
		for _, k := range keys {
			if got, want := seed.Hash64B([]byte(k)), seed.Hash64(k); got != want {
				t.Errorf("seed %d key %q: Hash64B = %d, Hash64 = %d", seed, k, got, want)
			}
			if got, want := seed.HashUnitB([]byte(k)), seed.HashUnit(k); got != want {
				t.Errorf("seed %d key %q: HashUnitB = %v, HashUnit = %v", seed, k, got, want)
			}
		}
	}
}

// TestReseedMatchesNew pins the stream-reuse path: a reseeded stream must
// draw the exact sequence a freshly constructed stream draws.
func TestReseedMatchesNew(t *testing.T) {
	seed := Seed(2021)
	r := seed.New("initial")
	_ = r.Float64() // disturb the state so Reseed has something to reset
	for _, key := range []string{"roots/emit/0/0", "roots/emit/7/95", "traffic/x/12"} {
		fresh := seed.New(key)
		seed.Reseed(r, key)
		for i := 0; i < 16; i++ {
			if got, want := r.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("key %q draw %d: reseeded %d != fresh %d", key, i, got, want)
			}
		}
		freshB := seed.New(key)
		seed.ReseedB(r, []byte(key))
		for i := 0; i < 16; i++ {
			if got, want := r.Uint64(), freshB.Uint64(); got != want {
				t.Fatalf("key %q draw %d (byte key): reseeded %d != fresh %d", key, i, got, want)
			}
		}
	}
}

// TestHashByteKeyAllocs pins the point of the byte variants: hashing a
// reused key buffer allocates nothing.
func TestHashByteKeyAllocs(t *testing.T) {
	seed := Seed(99)
	buf := make([]byte, 0, 64)
	buf = append(buf, "probe/0/fra/example.com/10.0.0.0/16"...)
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		sink += seed.HashUnitB(buf)
	})
	if allocs != 0 {
		t.Errorf("HashUnitB allocates %.1f per run, want 0", allocs)
	}
	_ = sink
}
