// Package randx provides deterministic, purpose-keyed random number streams
// and the distribution samplers the synthetic Internet model is built from.
//
// Every source of randomness in this module flows through a Stream derived
// from a root seed plus a string key (for example "world/asn" or
// "traffic/chromium"). Two runs with the same seed produce bit-identical
// worlds, traces and measurement results, which is what makes the
// experiment harness reproducible; changing one consumer's key does not
// perturb any other consumer's stream.
package randx

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Seed is the root seed of a simulation run.
type Seed uint64

// Stream is a deterministic random stream. It wraps math/rand with a seed
// derived from (root seed, key) so distinct purposes never share state.
type Stream struct {
	*rand.Rand
}

// FNV-1a parameters (the same ones hash/fnv uses). The hot paths hash
// append-built []byte keys with the hand-rolled loop below instead of
// hash/fnv's interface, which would force the key to escape; the two are
// bit-identical over equal bytes, which keyhash_test pins.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashKey mixes a root seed and a string key into a 64-bit sub-seed.
func hashKey(seed Seed, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	return int64(h.Sum64())
}

// hashKeyB is hashKey over a byte-slice key: identical output for equal
// bytes, no allocation and no escape of the key slice.
func hashKeyB(seed Seed, key []byte) int64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(seed>>(8*i)))) * fnvPrime64
	}
	for _, c := range key {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return int64(h)
}

// New returns the stream for the given purpose key.
func (s Seed) New(key string) *Stream {
	return &Stream{Rand: rand.New(rand.NewSource(hashKey(s, key)))}
}

// Reseed repositions an existing stream onto the given purpose key: the
// stream's subsequent draws are bit-identical to a fresh New(key) stream's,
// but the ~5 KB generator state is reused instead of reallocated. Loops
// that burn one short-lived stream per item (the root-trace generator
// reseeds per source-hour) amortize their generator to one allocation.
// Not safe concurrently with any use of the same stream.
func (s Seed) Reseed(r *Stream, key string) {
	r.Rand.Seed(hashKey(s, key))
}

// ReseedB is Reseed with an append-built byte-slice key.
func (s Seed) ReseedB(r *Stream, key []byte) {
	r.Rand.Seed(hashKeyB(s, key))
}

// Hash64 returns a stable 64-bit hash of (seed, key) with no stream state,
// for lazy per-entity decisions (e.g. "is this /24 active?") that must be
// answerable in any order.
func (s Seed) Hash64(key string) uint64 {
	return uint64(hashKey(s, key))
}

// Hash64B is Hash64 over a byte-slice key: Hash64B([]byte(k)) ==
// Hash64(k) for every k. Hot loops build keys by appending into a reused
// buffer and hash them here without materializing a string.
func (s Seed) Hash64B(key []byte) uint64 {
	return uint64(hashKeyB(s, key))
}

// HashUnit returns a stable uniform float64 in [0,1) for (seed, key).
func (s Seed) HashUnit(key string) float64 {
	return float64(s.Hash64(key)>>11) / (1 << 53)
}

// HashUnitB is HashUnit over a byte-slice key (same value as HashUnit of
// the equal string).
func (s Seed) HashUnitB(key []byte) float64 {
	return float64(s.Hash64B(key)>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Exp returns an exponentially distributed sample with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	return s.ExpFloat64() * mean
}

// Poisson returns a Poisson-distributed sample with the given mean, using
// inversion for small means and a normal approximation for large ones.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation; adequate for the aggregate traffic counts
		// this model samples.
		v := s.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// LogNormal returns a log-normal sample parameterized by the mean and sigma
// of the underlying normal.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.NormFloat64()*sigma + mu)
}

// Pareto returns a bounded Pareto-ish heavy-tailed sample >= xmin with
// shape alpha.
func (s *Stream) Pareto(xmin, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent
// skew > 1e-9. Rank 0 is most popular.
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf constructs a Zipf sampler over n ranks with the given skew
// (typical web-popularity skews are 0.7-1.2; values <= 0 fall back to 1.0).
func (s *Stream) NewZipf(n int, skew float64) *Zipf {
	if skew <= 0 {
		skew = 1.0
	}
	// rand.Zipf requires s > 1; shift a sub-1 skew into the supported range
	// by using s slightly above 1 and relying on v to shape the tail.
	zs := skew
	if zs <= 1 {
		zs = 1.0001
	}
	return &Zipf{z: rand.NewZipf(s.Rand, zs, 1, uint64(n-1)), n: n}
}

// Rank returns the next sampled rank in [0, n).
func (z *Zipf) Rank() int { return int(z.z.Uint64()) }

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to its weight. Weights must be non-negative; if they sum to
// zero the choice is uniform.
func (s *Stream) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return s.Intn(len(weights))
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// LowerLetters returns a random string of n lowercase ASCII letters — the
// alphabet Chromium draws its DNS interception probes from.
func (s *Stream) LowerLetters(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + s.Intn(26))
	}
	return string(b)
}

// Shuffle permutes the integers [0,n) and returns them.
func (s *Stream) Perm2(n int) []int { return s.Perm(n) }
