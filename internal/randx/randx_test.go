package randx

import (
	"math"
	"testing"
)

func TestStreamDeterminism(t *testing.T) {
	a := Seed(42).New("test")
	b := Seed(42).New("test")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed+key produced diverging streams")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Seed(42).New("alpha")
	b := Seed(42).New("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different keys coincide %d/64 times", same)
	}
}

func TestSeedSensitivity(t *testing.T) {
	if Seed(1).Hash64("x") == Seed(2).Hash64("x") {
		t.Error("different seeds hash identically")
	}
	if Seed(1).Hash64("x") == Seed(1).Hash64("y") {
		t.Error("different keys hash identically")
	}
}

func TestHashUnitRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		u := Seed(7).HashUnit(string(rune('a' + i%26)))
		if u < 0 || u >= 1 {
			t.Fatalf("HashUnit out of range: %v", u)
		}
	}
}

func TestHashUnitUniformish(t *testing.T) {
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		sum += Seed(99).HashUnit(string(rune(i)) + "/k")
	}
	mean := sum / float64(n)
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("HashUnit mean %v, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	s := Seed(1).New("poisson")
	for _, mean := range []float64{0.5, 3, 20, 200} {
		n, sum := 20000, 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.1+0.1 {
			t.Errorf("Poisson(%v) sample mean %v", mean, got)
		}
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	s := Seed(1).New("p0")
	if s.Poisson(0) != 0 || s.Poisson(-5) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestExpMean(t *testing.T) {
	s := Seed(2).New("exp")
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += s.Exp(4.0)
	}
	if got := sum / float64(n); math.Abs(got-4.0) > 0.3 {
		t.Errorf("Exp(4) mean %v", got)
	}
}

func TestParetoBounds(t *testing.T) {
	s := Seed(3).New("pareto")
	for i := 0; i < 1000; i++ {
		v := s.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto sample %v below xmin", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := Seed(4).New("zipf")
	z := s.NewZipf(1000, 1.1)
	counts := make([]int, 1000)
	for i := 0; i < 50000; i++ {
		r := z.Rank()
		if r < 0 || r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] <= counts[500]*2 {
		t.Errorf("Zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestWeightedChoice(t *testing.T) {
	s := Seed(5).New("wc")
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[s.WeightedChoice(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight item chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("weight ratio %v, want ~3", ratio)
	}
	// All-zero weights fall back to uniform without panicking.
	if i := s.WeightedChoice([]float64{0, 0}); i < 0 || i > 1 {
		t.Errorf("uniform fallback returned %d", i)
	}
}

func TestLowerLetters(t *testing.T) {
	s := Seed(6).New("ll")
	for n := 7; n <= 15; n++ {
		str := s.LowerLetters(n)
		if len(str) != n {
			t.Fatalf("len=%d want %d", len(str), n)
		}
		for _, c := range str {
			if c < 'a' || c > 'z' {
				t.Fatalf("non-lowercase rune %q in %q", c, str)
			}
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := Seed(8).New("ln")
	for i := 0; i < 1000; i++ {
		if s.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal sample not positive")
		}
	}
}
