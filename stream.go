package clientmap

import (
	"fmt"

	"clientmap/internal/churn"
	"clientmap/internal/core/cacheprobe"
	"clientmap/internal/experiments"
	"clientmap/internal/faults"
	"clientmap/internal/randx"
)

// StreamConfig parameterizes the continuous measurement mode: instead of
// a fixed-length campaign, probing loops one simulated hour at a time
// over a churning world, decaying old evidence and emitting a rolling
// serving artifact clientmapd can hot-reload.
type StreamConfig struct {
	// Seed / Scale as in Config.
	Seed  uint64
	Scale string
	// Hours is the simulated stream length (0 = 24).
	Hours int
	// Churn is the world-evolution spec, e.g.
	// "realloc=3@5h,drift=0.15@9h,pop=fra@6h+5h,chromium=off@12h".
	// Empty (or "off") streams over a static world.
	Churn string
	// EmitEvery emits the rolling artifact every N simulated hours
	// (0 = every hour).
	EmitEvery int
	// ArtifactPath, when set, receives the rolling serve.ClientMap on
	// every emit hour (atomic replace, deduped by payload hash).
	ArtifactPath string
	// Faults / Retries as in Config. The health layer stays off in
	// stream mode: the adaptive scheduler owns PoP liveness.
	Faults  string
	Retries string
	// Workers / StateDir / Resume / Log as in Config; every simulated
	// hour is its own resumable checkpoint.
	Workers  int
	StateDir string
	Resume   bool
	Log      func(format string, args ...any)
}

// StreamRun is a finished streaming run.
type StreamRun struct {
	res *experiments.StreamResults
}

// RunStream executes the continuous measurement mode.
func RunStream(cfg StreamConfig) (*StreamRun, error) {
	scale, err := scaleByName(cfg.Scale)
	if err != nil {
		return nil, err
	}
	scfg := experiments.StreamConfig{
		Seed:         randx.Seed(cfg.Seed),
		Scale:        scale,
		Hours:        cfg.Hours,
		EmitEvery:    cfg.EmitEvery,
		ArtifactPath: cfg.ArtifactPath,
		Workers:      cfg.Workers,
		StateDir:     cfg.StateDir,
		Resume:       cfg.Resume,
		Log:          cfg.Log,
	}
	if scfg.Churn, err = churn.Parse(cfg.Churn); err != nil {
		return nil, fmt.Errorf("clientmap: %w", err)
	}
	if scfg.Faults, err = faults.Parse(cfg.Faults); err != nil {
		return nil, fmt.Errorf("clientmap: %w", err)
	}
	if scfg.Retry, err = cacheprobe.ParseRetry(cfg.Retries); err != nil {
		return nil, fmt.Errorf("clientmap: %w", err)
	}
	res, err := experiments.RunStream(scfg)
	if err != nil {
		return nil, err
	}
	return &StreamRun{res: res}, nil
}

// ReportText renders the stream's end-of-run summary: the rolling-view
// headline, the coverage-lag table, and the quantified Chromium-
// deprecation loss. Byte-identical for equal configurations.
func (s *StreamRun) ReportText() string { return s.res.Report.Render() }

// MetricsJSON renders the stream's deterministic metrics ledger
// (campaign counters plus "stream/…" keys) as canonical JSON.
func (s *StreamRun) MetricsJSON() []byte { return s.res.MetricsJSON() }

// FinalArtifactHash is the payload hash of the last emitted rolling
// artifact (empty if the stream ran zero hours).
func (s *StreamRun) FinalArtifactHash() string { return s.res.FinalHash }
