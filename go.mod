module clientmap

go 1.22
