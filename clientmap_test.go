package clientmap

import (
	"strings"
	"testing"
)

var cached *Evaluation

func tinyEval(t testing.TB) *Evaluation {
	t.Helper()
	if cached != nil {
		return cached
	}
	eval, err := Run(Config{Seed: 7, Scale: ScaleTiny})
	if err != nil {
		t.Fatal(err)
	}
	cached = eval
	return eval
}

func TestRunUnknownScale(t *testing.T) {
	if _, err := Run(Config{Scale: "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestTextRendersAllArtifacts(t *testing.T) {
	text := tinyEval(t).Text()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Figure 1", "Figure 2", "Figure 5", "Headline",
		"cache probing", "DNS logs", "APNIC", "Microsoft clients",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestHeadlinePairsPaperValues(t *testing.T) {
	stats := tinyEval(t).Headline()
	if len(stats) < 10 {
		t.Fatalf("only %d headline stats", len(stats))
	}
	for _, s := range stats {
		if s.Name == "" || s.Paper == "" || s.Measured == "" {
			t.Errorf("incomplete stat: %+v", s)
		}
	}
}

func TestPrefixActive(t *testing.T) {
	eval := tinyEval(t)
	if _, err := eval.PrefixActive("not a cidr"); err == nil {
		t.Error("bad cidr accepted")
	}
	// Reserved space is never active.
	act, err := eval.PrefixActive("240.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if act.Active() || act.ASN != 0 {
		t.Errorf("reserved space active: %+v", act)
	}
	// At least one detected AS prefix resolves as active.
	asns := eval.EyeballASNs()
	if len(asns) == 0 {
		t.Fatal("no eyeball ASes")
	}
	cp, dl := eval.ActivePrefixCount()
	if cp == 0 || dl == 0 {
		t.Fatalf("active counts: %d, %d", cp, dl)
	}
}

func TestASActive(t *testing.T) {
	eval := tinyEval(t)
	asns := eval.EyeballASNs()
	found := false
	for _, asn := range asns {
		a := eval.ASActive(asn)
		if !a.CacheProbing && !a.DNSLogs {
			t.Fatalf("union AS %d not detected by either technique", asn)
		}
		if a.DNSLogs && a.RelativeVolume > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no AS has DNS-logs relative volume")
	}
	if a := eval.ASActive(4294967295); a.CacheProbing || a.DNSLogs {
		t.Error("nonexistent AS detected")
	}
}

func TestCountryCoverage(t *testing.T) {
	cov := tinyEval(t).CountryCoverage()
	if len(cov) == 0 {
		t.Fatal("no countries")
	}
	for c, f := range cov {
		if f < 0 || f > 1 {
			t.Errorf("%s coverage %v", c, f)
		}
	}
}

func TestGeoTrust(t *testing.T) {
	eval := tinyEval(t)
	if _, _, err := eval.GeoTrust("garbage"); err == nil {
		t.Error("bad cidr accepted")
	}
	trusted, reason, err := eval.GeoTrust("240.0.0.0/24")
	if err != nil || trusted || reason == "" {
		t.Errorf("reserved space: trusted=%v reason=%q err=%v", trusted, reason, err)
	}
}

func TestScalesSorted(t *testing.T) {
	s := Scales()
	if len(s) != 4 {
		t.Fatalf("scales = %v", s)
	}
}

func TestActivityRanking(t *testing.T) {
	eval := tinyEval(t)
	ranking := eval.ActivityRanking(10)
	if len(ranking) == 0 || len(ranking) > 10 {
		t.Fatalf("ranking size %d", len(ranking))
	}
	for i, r := range ranking {
		if r.Prefix == "" || r.Activity <= 0 || r.Warmth <= 0 {
			t.Errorf("entry %d incomplete: %+v", i, r)
		}
		if i > 0 && ranking[i-1].Activity < r.Activity {
			t.Error("ranking not descending")
		}
	}
	all := eval.ActivityRanking(0)
	if len(all) < len(ranking) {
		t.Error("n=0 should return the full ranking")
	}
}
