// Peering analysis: reproduces the paper's framing example (§1) — a 2015
// study found Google peered directly with 41% of networks overall but with
// 61% of networks hosting end users, so conclusions about "how direct are
// cloud paths" flip depending on whether one weights by eyeballs.
//
// This example builds a synthetic cloud provider's peering set (it peers
// with the largest networks, as clouds do) and contrasts the two ways of
// counting: across all ASes versus across eyeball ASes identified by the
// measurement techniques.
//
//	go run ./examples/peering
package main

import (
	"fmt"
	"log"
	"sort"

	"clientmap"
)

func main() {
	eval, err := clientmap.Run(clientmap.Config{Seed: 42, Scale: clientmap.ScaleSmall})
	if err != nil {
		log.Fatal(err)
	}

	// Every AS seen by any method, and the confidently-eyeball subset:
	// networks where BOTH techniques saw client activity (web clients via
	// cache probing and browser startups via DNS logs).
	eyeballSet := make(map[uint32]bool)
	for _, asn := range eval.EyeballASNs() {
		a := eval.ASActive(asn)
		if a.CacheProbing && a.DNSLogs {
			eyeballSet[asn] = true
		}
	}
	// The full AS population: take everything the broadest dataset saw.
	// (Results() exposes the experiment internals for analysis programs.)
	all := eval.Results().ASMSClients.ASNs()

	// The cloud peers with networks where peering pays off: the busiest
	// eyeball networks (by DNS-logs relative volume) and a slice of the
	// rest (IXP happenstance).
	rel := eval.Results().ASDNSLogs.RelativeVolumes()
	sorted := append([]uint32(nil), all...)
	sort.Slice(sorted, func(i, j int) bool { return rel[sorted[i]] > rel[sorted[j]] })

	peered := make(map[uint32]bool)
	for i, asn := range sorted {
		if i < len(sorted)/4 { // top quarter by activity
			peered[asn] = true
		} else if i%7 == 0 { // sparse tail peering
			peered[asn] = true
		}
	}

	count := func(asns []uint32) (p, n int) {
		for _, asn := range asns {
			n++
			if peered[asn] {
				p++
			}
		}
		return p, n
	}

	pAll, nAll := count(all)
	var eyeballsInAll []uint32
	for _, asn := range all {
		if eyeballSet[asn] {
			eyeballsInAll = append(eyeballsInAll, asn)
		}
	}
	pEye, nEye := count(eyeballsInAll)

	fmt.Printf("cloud peers directly with %d of %d networks overall: %.0f%%\n",
		pAll, nAll, 100*float64(pAll)/float64(nAll))
	fmt.Printf("among networks hosting end users:       %d of %d: %.0f%%\n",
		pEye, nEye, 100*float64(pEye)/float64(nEye))
	fmt.Println("\nthe same peering fabric looks far more complete when weighted by")
	fmt.Println("eyeball networks — the paper's argument for knowing where users are")
	fmt.Println("(the 2015 study measured 41% overall vs 61% among user networks)")
}
