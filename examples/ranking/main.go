// Activity ranking: the paper's §6 future work, implemented — combine the
// two techniques into a relative activity ranking across prefixes, plus
// the diurnal-pattern signal separating human-like from machine-like
// space ("patterns over time" in the paper's roadmap).
//
//	go run ./examples/ranking
package main

import (
	"fmt"
	"log"

	"clientmap"
)

func main() {
	eval, err := clientmap.Run(clientmap.Config{Seed: 42, Scale: clientmap.ScaleTiny})
	if err != nil {
		log.Fatal(err)
	}

	top := eval.ActivityRanking(12)
	fmt.Println("most active client prefixes (relative estimate):")
	fmt.Println("prefix             AS       country  activity   warmth  human-score")
	for _, r := range top {
		fmt.Printf("%-18s AS%-6d %-8s %-10.3g %-7.2f %.2f\n",
			r.Prefix, r.ASN, r.Country, r.Activity, r.Warmth, r.HumanScore)
	}

	// Human vs machine: high human-score prefixes show day-night cache
	// patterns; scores near 1 are warm around the clock.
	human, flat := 0, 0
	for _, r := range eval.ActivityRanking(0) {
		if r.HumanScore > 1.05 {
			human++
		} else {
			flat++
		}
	}
	fmt.Printf("\n%d prefixes show diurnal (human-like) cache patterns, %d look flat\n", human, flat)
	fmt.Println("(the paper's §6 proposes exactly these signals for eyeball inference)")
}
