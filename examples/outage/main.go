// Outage triage: the paper's opening question — "does an outage impact any
// users?" (§1). Given a list of prefixes affected by a routing incident,
// rank them by whether they contain Internet clients, so an operator
// responds to the user-facing ones first and deprioritizes dark or
// infrastructure-only space.
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"
	"sort"

	"clientmap"
)

func main() {
	eval, err := clientmap.Run(clientmap.Config{Seed: 42, Scale: clientmap.ScaleTiny})
	if err != nil {
		log.Fatal(err)
	}

	// An incident report arrives: these prefixes lost reachability. (The
	// list mixes genuinely active space with unused corners, as real
	// incident reports do; at seed 42 the 1.x region is the synthetic
	// world's allocated space.)
	outage := []string{
		"1.1.0.0/22",
		"1.3.7.0/24",
		"1.6.32.0/20",
		"1.9.129.0/24",
		"1.12.0.0/22",
		"9.9.9.0/24", // outside allocated space entirely
		"1.2.200.0/24",
		"1.10.64.0/21",
	}

	type triage struct {
		prefix string
		act    clientmap.PrefixActivity
	}
	var rows []triage
	for _, p := range outage {
		act, err := eval.PrefixActive(p)
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		rows = append(rows, triage{p, act})
	}
	// Client-bearing prefixes first; both-technique confirmations top.
	sort.SliceStable(rows, func(i, j int) bool {
		score := func(a clientmap.PrefixActivity) int {
			s := 0
			if a.CacheProbing {
				s += 2
			}
			if a.DNSLogs {
				s++
			}
			return s
		}
		return score(rows[i].act) > score(rows[j].act)
	})

	fmt.Println("outage triage (respond top-down):")
	fmt.Println("prefix            priority  evidence")
	for _, r := range rows {
		var priority, evidence string
		switch {
		case r.act.CacheProbing && r.act.DNSLogs:
			priority, evidence = "P1", "web clients and a recursive resolver inside"
		case r.act.CacheProbing:
			priority, evidence = "P2", "web clients observed via cache probing"
		case r.act.DNSLogs:
			priority, evidence = "P3", "hosts a recursive resolver (users may sit behind it)"
		default:
			priority, evidence = "P4", "no client activity detected; likely dark space"
		}
		origin := "unrouted"
		if r.act.ASN != 0 {
			origin = fmt.Sprintf("AS%d", r.act.ASN)
		}
		fmt.Printf("%-17s %-9s %s (%s)\n", r.prefix, priority, evidence, origin)
	}
}
