// Quickstart: run the full measurement pipeline on a small synthetic
// Internet and ask the basic question the library answers — which networks
// host Internet clients?
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clientmap"
)

func main() {
	// A seeded run is fully reproducible: same seed, same world, same
	// measurements, same tables.
	eval, err := clientmap.Run(clientmap.Config{Seed: 42, Scale: clientmap.ScaleTiny})
	if err != nil {
		log.Fatal(err)
	}

	cp, dl := eval.ActivePrefixCount()
	eyeballs := eval.EyeballASNs()
	fmt.Printf("cache probing flagged %d /24s; DNS logs flagged %d resolver /24s\n", cp, dl)
	fmt.Printf("%d ASes host detectable client activity\n\n", len(eyeballs))

	// Per-AS detail: how each technique saw the first few eyeball ASes.
	fmt.Println("ASN      cacheProbing  dnsLogs  relVolume  apnicUsers")
	for _, asn := range eyeballs[:min(8, len(eyeballs))] {
		a := eval.ASActive(asn)
		fmt.Printf("AS%-6d %-13v %-8v %-10.2g %.0f\n",
			a.ASN, a.CacheProbing, a.DNSLogs, a.RelativeVolume, a.APNICUsers)
	}

	// The headline validation: how the techniques compare to the paper's
	// privileged baselines.
	fmt.Println("\npaper vs measured:")
	for _, s := range eval.Headline()[:4] {
		fmt.Printf("  %-55s %-10s → %s\n", s.Name, s.Paper, s.Measured)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
