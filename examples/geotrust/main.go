// Geolocation trust: the paper's second motivating use case (§1) — IP
// geolocation databases are accurate for end-user networks and unreliable
// for infrastructure, so "can this geolocation entry be trusted?" reduces
// to "does this prefix host clients?". This example scores a batch of
// prefixes the way a threat-intelligence or analytics pipeline would
// before trusting MaxMind-style lookups.
//
//	go run ./examples/geotrust
package main

import (
	"fmt"
	"log"

	"clientmap"
)

func main() {
	eval, err := clientmap.Run(clientmap.Config{Seed: 42, Scale: clientmap.ScaleTiny})
	if err != nil {
		log.Fatal(err)
	}

	// A mixed batch: eyeball space, resolver infrastructure, dark space.
	batch := []string{
		"1.1.0.0/24",
		"1.4.16.0/24",
		"1.8.3.0/24",
		"1.11.40.0/24",
		"9.9.9.0/24",
		"1.13.1.0/24",
	}

	trusted, flagged := 0, 0
	fmt.Println("prefix          verdict    rationale")
	for _, p := range batch {
		ok, reason, err := eval.GeoTrust(p)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "FLAG"
		if ok {
			verdict = "TRUST"
			trusted++
		} else {
			flagged++
		}
		fmt.Printf("%-15s %-10s %s\n", p, verdict, reason)
	}
	fmt.Printf("\n%d entries trusted, %d flagged for manual review\n", trusted, flagged)
	fmt.Println("(a geolocation consumer would weight or discard the flagged entries)")
}
