// Package examples_test smoke-tests every example binary: each must
// build, run a full (tiny-scale) evaluation to completion, exit zero,
// and print the sections its documentation promises. The examples are
// the library's de-facto API tutorial, so a signature or behaviour
// change that breaks them must fail CI, not a reader.
package examples_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("each example runs a full tiny-scale evaluation")
	}
	cases := []struct {
		name string
		// want are output sections that must all appear on stdout.
		want []string
	}{
		{"quickstart", []string{
			"cache probing flagged",
			"ASes host detectable client activity",
			"paper vs measured:",
		}},
		{"geotrust", []string{
			"verdict",
			"entries trusted",
			"flagged for manual review",
		}},
		{"outage", []string{
			"outage triage (respond top-down):",
			"priority",
		}},
		{"peering", []string{
			"cloud peers directly with",
			"among networks hosting end users:",
		}},
		{"ranking", []string{
			"most active client prefixes",
			"human-score",
		}},
	}

	bindir := t.TempDir()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			bin := filepath.Join(bindir, tc.name)
			build := exec.Command("go", "build", "-o", bin, "./"+tc.name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build: %v\n%s", err, out)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q\n--- output ---\n%s", want, out)
				}
			}
		})
	}
}
