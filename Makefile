GO ?= go

.PHONY: build test race vet bench bench-smoke check cover fuzz-smoke golden-update serve-smoke

# Packages whose coverage is gated in CI: the wire/transport layer, the
# measurement cores, the stage runner, the snapshot codecs, the metrics
# registry, the degradation layer, and the simulated world + traffic
# models, where an untested branch is a silently wrong result.
COVER_PKGS = ./internal/dnsnet/... ./internal/core/... ./internal/pipeline/... ./internal/snapshot/... ./internal/metrics/... ./internal/health/... ./internal/serve/... ./internal/world/... ./internal/traffic/... ./internal/statefs/... ./internal/statefsck/...
COVER_FLOOR = 70
# The metrics registry, the health layer, the snapshot codecs, the
# stage runner, the serving layer, the world/traffic substrate, and the
# state-durability layer (statefs fault injection, statefsck repair)
# back the determinism guarantees of every exported ledger, every
# breaker/failover decision, every shard/delta checkpoint, every answer
# handed to a client and every downstream measurement, so they carry a
# higher floor.
COVER_FLOOR_METRICS = 80

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the whole suite under the race detector; the campaign tests run
# at ScaleTiny, so this covers the parallel probing engine end to end. The
# chaos determinism pair runs several small-scale campaigns each, which
# puts internal/experiments past go test's default 10m binary timeout
# under the race detector — hence the explicit bound.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench . -benchmem ./...

# bench-smoke runs every benchmark exactly once: cheap enough for CI, and
# it keeps the benchmarks (and the alloc-regression gates that live next
# to them) compiling and passing as the code moves.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# cover enforces a per-package statement-coverage floor on the gated
# packages. Per-package (not aggregate) so a well-tested neighbour can't
# mask an untested one.
cover:
	@$(GO) test -count=1 -coverprofile=coverage.out -covermode=atomic $(COVER_PKGS) | \
	awk -v floor=$(COVER_FLOOR) -v mfloor=$(COVER_FLOOR_METRICS) ' \
		{ print } \
		/coverage:/ { \
			f = floor; if ($$2 ~ /internal\/(metrics|health|snapshot|pipeline|serve|world|traffic|statefs|statefsck)/) f = mfloor; \
			pct = $$5; sub(/%.*/, "", pct); \
			if (pct + 0 < f) { bad = 1; print "FAIL: " $$2 " below " f "% floor" } \
		} \
		END { exit bad }'

# fuzz-smoke replays the seeded corpora and runs each fuzz target briefly —
# enough to catch a framing or parser regression without a long campaign.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshal -fuzztime=10s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzReadTCP -fuzztime=10s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/faults
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/health
	$(GO) test -run='^$$' -fuzz=FuzzChurnParse -fuzztime=10s ./internal/churn
	$(GO) test -run='^$$' -fuzz=FuzzReverseName -fuzztime=10s ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzHTTPQuery -fuzztime=10s ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotDecode -fuzztime=10s ./internal/snapshot
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/statefs

# golden-update regenerates the golden regression corpus (the headline
# statistics of a fixed small-scale campaign, the degraded-mode stats of
# the same campaign under the chaos matrix, and the streaming corpus:
# rolling-view headline stats plus the coverage-lag table of a fixed
# 24-sim-hour churn scenario). Run after an intentional behaviour change
# and review the diff: every moved number is a semantic change to the
# reproduction.
golden-update:
	CLIENTMAP_UPDATE_GOLDEN=1 $(GO) test -count=1 -run 'TestGolden' ./internal/experiments/ ./internal/serve/

# check is the pre-merge gate: static analysis plus the race-enabled suite.
check: vet race

# serve-smoke boots the full serving path end to end: export a tiny
# deterministic artifact, start clientmapd on ephemeral ports, replay a
# loadgen burst over both transports, and fail on any query error or a
# p99 above 50ms. The limiter is off — loadgen blasts from one client.
SMOKE_DIR = /tmp/clientmap-smoke
serve-smoke:
	mkdir -p $(SMOKE_DIR)
	$(GO) build -o $(SMOKE_DIR)/experiments ./cmd/experiments
	$(GO) build -o $(SMOKE_DIR)/clientmapd ./cmd/clientmapd
	$(GO) build -o $(SMOKE_DIR)/loadgen ./cmd/loadgen
	$(SMOKE_DIR)/experiments -scale tiny -seed 2021 -serve-artifact $(SMOKE_DIR)/map.snap
	$(SMOKE_DIR)/clientmapd -artifact $(SMOKE_DIR)/map.snap \
		-http 127.0.0.1:18053 -dns 127.0.0.1:15353 -rate=-1 & pid=$$!; \
	trap 'kill $$pid' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:18053/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	$(SMOKE_DIR)/loadgen -artifact $(SMOKE_DIR)/map.snap \
		-http http://127.0.0.1:18053 -dns 127.0.0.1:15353 \
		-n 1000 -workers 8 -p99-max 50ms -json $(SMOKE_DIR)/BENCH_serve.json
