GO ?= go

.PHONY: build test race vet bench check cover fuzz-smoke golden-update

# Packages whose coverage is gated in CI: the wire/transport layer, the
# measurement cores, the stage runner and the metrics registry, where an
# untested branch is a silently wrong result.
COVER_PKGS = ./internal/dnsnet/... ./internal/core/... ./internal/pipeline/... ./internal/metrics/...
COVER_FLOOR = 70
# The metrics registry backs the determinism guarantees of every exported
# ledger, so it carries a higher floor.
COVER_FLOOR_METRICS = 80

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the whole suite under the race detector; the campaign tests run
# at ScaleTiny, so this covers the parallel probing engine end to end.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# cover enforces a per-package statement-coverage floor on the gated
# packages. Per-package (not aggregate) so a well-tested neighbour can't
# mask an untested one.
cover:
	@$(GO) test -count=1 -coverprofile=coverage.out -covermode=atomic $(COVER_PKGS) | \
	awk -v floor=$(COVER_FLOOR) -v mfloor=$(COVER_FLOOR_METRICS) ' \
		{ print } \
		/coverage:/ { \
			f = floor; if ($$2 ~ /internal\/metrics/) f = mfloor; \
			pct = $$5; sub(/%.*/, "", pct); \
			if (pct + 0 < f) { bad = 1; print "FAIL: " $$2 " below " f "% floor" } \
		} \
		END { exit bad }'

# fuzz-smoke replays the seeded corpora and runs each fuzz target briefly —
# enough to catch a framing or parser regression without a long campaign.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshal -fuzztime=10s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzReadTCP -fuzztime=10s ./internal/dnswire

# golden-update regenerates the golden regression corpus (the headline
# statistics of a fixed small-scale campaign). Run after an intentional
# behaviour change and review the diff: every moved number is a semantic
# change to the reproduction.
golden-update:
	CLIENTMAP_UPDATE_GOLDEN=1 $(GO) test -count=1 -run TestGoldenHeadline ./internal/experiments/

# check is the pre-merge gate: static analysis plus the race-enabled suite.
check: vet race
