GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the whole suite under the race detector; the campaign tests run
# at ScaleTiny, so this covers the parallel probing engine end to end.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# check is the pre-merge gate: static analysis plus the race-enabled suite.
check: vet race
